#include "algos/any_fit.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(AnyFit, FirstFitPrefersEarliestOpenBin) {
  // Bins: [0.7], [0.3]; a 0.3 item must join bin 0 (earliest with room).
  const Instance in = make_instance({
      {0.0, 10.0, 0.7},
      {0.0, 10.0, 0.8},
      {1.0, 5.0, 0.3},
  });
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_EQ(r.placements[2].bin, 0);
  EXPECT_EQ(r.bins_opened, 2u);
}

TEST(AnyFit, BestFitPrefersFullestBin) {
  const Instance in = make_instance({
      {0.0, 10.0, 0.3},
      {0.0, 10.0, 0.6},
      {1.0, 5.0, 0.3},
  });
  algos::BestFit bf;
  const RunResult r = Simulator{}.run(in, bf);
  EXPECT_EQ(r.placements[2].bin, 1);  // 0.6 is fuller than 0.3
}

TEST(AnyFit, WorstFitPrefersEmptiestBin) {
  const Instance in = make_instance({
      {0.0, 10.0, 0.6},
      {0.0, 10.0, 0.3},
      {1.0, 5.0, 0.3},
  });
  algos::WorstFit wf;
  const RunResult r = Simulator{}.run(in, wf);
  EXPECT_EQ(r.placements[2].bin, 1);
}

TEST(AnyFit, NextFitOnlyConsidersNewestBin) {
  const Instance in = make_instance({
      {0.0, 10.0, 0.5},
      {0.0, 10.0, 0.9},  // forces a second bin
      {1.0, 5.0, 0.3},   // fits bin 0, but NextFit only looks at bin 1
  });
  algos::NextFit nf;
  const RunResult r = Simulator{}.run(in, nf);
  EXPECT_EQ(r.placements[2].bin, 2);
  EXPECT_EQ(r.bins_opened, 3u);
}

TEST(AnyFit, ClosedBinsNeverReused) {
  const Instance in = make_instance({
      {0.0, 1.0, 0.5},
      {2.0, 3.0, 0.5},  // the old bin closed at t=1
  });
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_EQ(r.bins_opened, 2u);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(AnyFit, PlacementIgnoresDepartures) {
  // First-Fit is non-clairvoyant: permuting departures must not change
  // the bin sequence chosen at arrival times.
  Instance in1, in2;
  const double sizes[] = {0.4, 0.5, 0.3, 0.6, 0.2, 0.7};
  for (int k = 0; k < 6; ++k) {
    in1.add(static_cast<Time>(k) * 0.1, 100.0 + k, sizes[k]);
    in2.add(static_cast<Time>(k) * 0.1, 200.0 - 7 * k, sizes[k]);
  }
  in1.finalize();
  in2.finalize();
  algos::FirstFit a, b;
  const RunResult r1 = Simulator{}.run(in1, a);
  const RunResult r2 = Simulator{}.run(in2, b);
  ASSERT_EQ(r1.placements.size(), r2.placements.size());
  for (std::size_t i = 0; i < r1.placements.size(); ++i)
    EXPECT_EQ(r1.placements[i].bin, r2.placements[i].bin) << "item " << i;
}

TEST(AnyFit, NamesAndRules) {
  EXPECT_EQ(algos::FirstFit{}.name(), "FirstFit");
  EXPECT_EQ(algos::BestFit{}.name(), "BestFit");
  EXPECT_EQ(algos::NextFit{}.name(), "NextFit");
  EXPECT_EQ(algos::WorstFit{}.name(), "WorstFit");
  EXPECT_EQ(algos::FirstFit{}.rule(), algos::FitRule::kFirst);
}

TEST(AnyFit, PickBinHonorsCandidateOrder) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.5, a, 0.0);
  ledger.place(1, 0.2, b, 0.0);
  // First: a (earliest). Best: a (fullest). Worst: b.
  EXPECT_EQ(algos::pick_bin(ledger, {a, b}, 0.3, algos::FitRule::kFirst), a);
  EXPECT_EQ(algos::pick_bin(ledger, {a, b}, 0.3, algos::FitRule::kBest), a);
  EXPECT_EQ(algos::pick_bin(ledger, {a, b}, 0.3, algos::FitRule::kWorst), b);
  // Nothing fits 0.9.
  EXPECT_EQ(algos::pick_bin(ledger, {a, b}, 0.9, algos::FitRule::kFirst),
            kNoBin);
  // Empty candidate list.
  EXPECT_EQ(algos::pick_bin(ledger, {}, 0.1, algos::FitRule::kBest), kNoBin);
}

TEST(AnyFit, TieBreakingIsEarliestOpenedInBothModes) {
  // Three equally-loaded bins: kBest and kWorst both tie across all of
  // them; the contract (and what the competitive analyses implicitly
  // assume) is that ties break to the earliest-opened bin. Checked for
  // the linear reference and the indexed path side by side.
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  const BinId b = ledger.open_bin(0.0);
  const BinId c = ledger.open_bin(0.0);
  ledger.place(0, 0.4, a, 0.0);
  ledger.place(1, 0.4, b, 0.0);
  ledger.place(2, 0.4, c, 0.0);
  for (const auto rule : {algos::FitRule::kFirst, algos::FitRule::kBest,
                          algos::FitRule::kWorst}) {
    EXPECT_EQ(algos::pick_bin(ledger, {a, b, c}, 0.3, rule), a)
        << to_string(rule);
    EXPECT_EQ(algos::pick_bin_indexed(ledger, /*pool=*/0, 0.3, rule), a)
        << to_string(rule);
  }
  // Partial tie: a is excluded by load, b and c tie.
  ledger.place(3, 0.3, a, 1.0);  // a now 0.7
  for (const auto rule : {algos::FitRule::kBest, algos::FitRule::kWorst}) {
    EXPECT_EQ(algos::pick_bin(ledger, {a, b, c}, 0.4, rule), b)
        << to_string(rule);
    EXPECT_EQ(algos::pick_bin_indexed(ledger, /*pool=*/0, 0.4, rule), b)
        << to_string(rule);
  }
}

TEST(AnyFit, SentinelWhenNothingFitsInBothModes) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.95, a, 0.0);
  ledger.place(1, 0.9, b, 0.0);
  for (const auto rule : {algos::FitRule::kFirst, algos::FitRule::kBest,
                          algos::FitRule::kWorst, algos::FitRule::kNext}) {
    EXPECT_EQ(algos::pick_bin(ledger, {a, b}, 0.2, rule), kNoBin)
        << to_string(rule);
    EXPECT_EQ(algos::pick_bin_indexed(ledger, /*pool=*/0, 0.2, rule), kNoBin)
        << to_string(rule);
  }
  // Unknown pool: the index has never seen it.
  EXPECT_EQ(algos::pick_bin_indexed(ledger, /*pool=*/7, 0.01,
                                    algos::FitRule::kFirst),
            kNoBin);
}

TEST(AnyFit, ExactFitAcceptedInBothModes) {
  // Boundary case for the index's best-fit load bound: an item that fills
  // the bin to exactly kBinCapacity must be accepted by every rule.
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  ledger.place(0, 0.25, a, 0.0);
  const Load exact = 0.75;  // 0.25 + 0.75 == 1.0 exactly
  for (const auto rule : {algos::FitRule::kFirst, algos::FitRule::kBest,
                          algos::FitRule::kWorst, algos::FitRule::kNext}) {
    EXPECT_EQ(algos::pick_bin(ledger, {a}, exact, rule), a)
        << to_string(rule);
    EXPECT_EQ(algos::pick_bin_indexed(ledger, /*pool=*/0, exact, rule), a)
        << to_string(rule);
  }
}

TEST(AnyFit, IndexedNextFitMatchesNewestOpenSemantics) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.2, a, 0.0);
  ledger.place(1, 0.8, b, 0.0);
  // Newest bin b cannot take 0.5; NextFit must NOT fall back to a.
  EXPECT_EQ(algos::pick_bin_indexed(ledger, 0, 0.5, algos::FitRule::kNext),
            kNoBin);
  ledger.place(2, 0.5, a, 1.0);
  ledger.remove(1, 2.0);  // closes b; newest open is again a
  EXPECT_EQ(algos::pick_bin_indexed(ledger, 0, 0.2, algos::FitRule::kNext),
            a);
}

TEST(AnyFit, AllVariantsProduceValidRuns) {
  const Instance in = make_instance({
      {0.0, 8.0, 0.55}, {0.0, 2.0, 0.50}, {1.0, 6.0, 0.25},
      {2.0, 4.0, 0.70}, {3.0, 9.0, 0.15}, {5.0, 7.0, 0.90},
  });
  for (auto& f : testutil::online_factories()) {
    auto algo = f.make();
    const RunResult r = Simulator{}.run(in, *algo);
    EXPECT_TRUE(validate_run(in, r).ok()) << f.name;
  }
}

}  // namespace
}  // namespace cdbp
