#include "algos/busy_period.h"

#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "algos/hybrid.h"
#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using algos::BusyPeriodReset;
using testutil::make_instance;

TEST(BusyPeriodReset, CountsPeriods) {
  const Instance in = make_instance({
      {0.0, 2.0, 0.5},
      {1.0, 3.0, 0.5},   // same period
      {10.0, 11.0, 0.5}, // gap -> new period
      {20.0, 21.0, 0.5}, // gap -> new period
  });
  BusyPeriodReset wrapped(std::make_unique<algos::Hybrid>());
  const RunResult r = Simulator{}.run(in, wrapped);
  EXPECT_TRUE(validate_run(in, r).ok());
  EXPECT_EQ(wrapped.periods(), 3u);
  EXPECT_NE(wrapped.name().find("per-busy-period"), std::string::npos);
}

TEST(BusyPeriodReset, ResetsInnerTypeLoads) {
  // Two same-type heavy bursts separated by a gap. Without the reset, HA's
  // stale type load could mis-route the second burst; with it, behaviour
  // is identical to running HA on each period separately.
  Instance both = make_instance({
      {0.0, 2.0, 0.4}, {0.0, 2.0, 0.4},      // period 1: switches to CD
      {64.0, 66.0, 0.4}, {64.0, 66.0, 0.4},  // period 2
  });
  Instance alone = make_instance({{0.0, 2.0, 0.4}, {0.0, 2.0, 0.4}});

  BusyPeriodReset wrapped(std::make_unique<algos::Hybrid>());
  const RunResult r_both = Simulator{}.run(both, wrapped);
  algos::Hybrid plain;
  const RunResult r_alone = Simulator{}.run(alone, plain);
  // Each period must look exactly like the standalone run (same bins/groups
  // pattern, same per-period cost).
  EXPECT_DOUBLE_EQ(r_both.cost, 2.0 * r_alone.cost);
  EXPECT_EQ(r_both.bins_opened, 2 * r_alone.bins_opened);
}

TEST(BusyPeriodReset, NullInnerRejected) {
  EXPECT_THROW(BusyPeriodReset{nullptr}, std::invalid_argument);
}

TEST(BusyPeriodReset, EquivalentOnContiguousInputs) {
  // No gaps -> the wrapper never fires after the first arrival, so costs
  // match the bare algorithm exactly.
  std::mt19937_64 rng(3);
  workloads::GeneralConfig cfg;
  cfg.target_items = 150;
  cfg.log2_mu = 6;
  cfg.horizon = 16.0;  // dense: one busy period with high probability
  const Instance in = workloads::make_general_random(cfg, rng);
  BusyPeriodReset wrapped(std::make_unique<algos::FirstFit>());
  algos::FirstFit plain;
  const Cost cw = run_cost(in, wrapped);
  const Cost cp = run_cost(in, plain);
  if (wrapped.periods() <= 1) {
    EXPECT_DOUBLE_EQ(cw, cp);
  }
}

TEST(BusyPeriodReset, NestedResetWorks) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {5.0, 6.0, 0.5}});
  BusyPeriodReset wrapped(std::make_unique<algos::NextFit>());
  const RunResult r1 = Simulator{}.run(in, wrapped);
  const RunResult r2 = Simulator{}.run(in, wrapped);  // reset() between runs
  EXPECT_DOUBLE_EQ(r1.cost, r2.cost);
}

class BusyPeriodProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusyPeriodProperty, WrapperPreservesValidity) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 100;
  cfg.log2_mu = 5;
  cfg.horizon = 400.0;  // sparse: many busy periods
  const Instance in = workloads::make_general_random(cfg, rng);
  for (const auto& f : testutil::online_factories()) {
    BusyPeriodReset wrapped(f.make());
    const RunResult r = Simulator{}.run(in, wrapped);
    EXPECT_TRUE(validate_run(in, r).ok()) << f.name;
    EXPECT_GE(wrapped.periods(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusyPeriodProperty,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace cdbp
