// The paper's sharpest falsifiable claims, checked exactly:
//   Corollary 5.8: CDFF_{t+}(sigma_mu) = max_0(binary(t)) + 1 for all t;
//   Lemma 5.5: the bit -> row rule for every item of sigma_mu;
//   Proposition 5.3: CDFF(sigma_mu) <= (2 log log mu + 1) OPT_R(sigma_mu).
#include <gtest/gtest.h>

#include "algos/cdff.h"
#include "binstr/binstr.h"
#include "core/session.h"
#include "core/simulator.h"
#include "core/validation.h"
#include "opt/bounds.h"
#include "workloads/binary_input.h"

namespace cdbp {
namespace {

using algos::Cdff;
using workloads::expected_cdff_bins;
using workloads::make_binary_input;

/// Replays sigma_mu interactively and returns CDFF's open-bin count right
/// after each instant's arrivals (CDFF_{t+}).
std::vector<std::size_t> bins_after_each_instant(int n) {
  const Instance in = make_binary_input(n);
  Cdff cdff;
  InteractiveSession session(cdff);
  std::vector<std::size_t> counts;
  const auto mu = static_cast<std::int64_t>(pow2(n));
  std::size_t next = 0;
  for (std::int64_t t = 0; t < mu; ++t) {
    while (next < in.size() && in[next].arrival == static_cast<Time>(t)) {
      session.offer(in[next].arrival, in[next].departure, in[next].size);
      ++next;
    }
    counts.push_back(session.open_bins());
  }
  EXPECT_EQ(next, in.size());
  session.finish();
  return counts;
}

TEST(CdffBinary, Corollary58ExactForMu8) {
  // Hand-checked values for n = 3 (mu = 8):
  //   t:        0  1  2  3  4  5  6  7
  //   binary:  000 001 010 011 100 101 110 111
  //   max_0:    3  2  1  1  2  1  1  0
  const std::vector<std::size_t> expect = {4, 3, 2, 2, 3, 2, 2, 1};
  EXPECT_EQ(bins_after_each_instant(3), expect);
}

class Corollary58Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Corollary58Sweep, BinCountEqualsMaxZeroRunPlusOne) {
  const int n = GetParam();
  const std::vector<std::size_t> counts = bins_after_each_instant(n);
  const auto mu = static_cast<std::int64_t>(pow2(n));
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(mu));
  for (std::int64_t t = 0; t < mu; ++t) {
    EXPECT_EQ(counts[static_cast<std::size_t>(t)],
              static_cast<std::size_t>(
                  expected_cdff_bins(n, static_cast<std::uint64_t>(t))))
        << "n=" << n << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallMu, Corollary58Sweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

TEST(CdffBinary, Lemma55RowRule) {
  // For every t and every active item r: if bit log2(l(r)) of
  // b_t = 1||binary(t) is 1 the item sits in paper row 0; if it is 0 and s
  // zeros extend above it, the item sits in paper row s + 1.
  const int n = 6;
  const Instance in = make_binary_input(n);
  Cdff cdff;
  InteractiveSession session(cdff);
  const auto mu = static_cast<std::int64_t>(pow2(n));
  std::size_t next = 0;
  std::vector<ItemId> active_by_bucket(static_cast<std::size_t>(n) + 1,
                                       kNoBin);
  for (std::int64_t t = 0; t < mu; ++t) {
    while (next < in.size() && in[next].arrival == static_cast<Time>(t)) {
      const Item& r = in[next];
      session.offer(r.arrival, r.departure, r.size);
      active_by_bucket[static_cast<std::size_t>(aligned_bucket(r.length()))] =
          r.id;
      ++next;
    }
    for (int bucket = 0; bucket <= n; ++bucket) {
      const ItemId id = active_by_bucket[static_cast<std::size_t>(bucket)];
      ASSERT_NE(id, kNoBin) << "every length active at every instant";
      const BinId bin = session.ledger().bin_of(id);
      ASSERT_NE(bin, kNoBin);
      const int paper_row = cdff.paper_row_of(bin);
      const auto ut = static_cast<std::uint64_t>(t);
      if (binstr::prefixed_bit(ut, n, bucket)) {
        EXPECT_EQ(paper_row, 0) << "t=" << t << " bucket=" << bucket;
      } else {
        const int s = binstr::zero_run_above(ut, n, bucket);
        EXPECT_EQ(paper_row, s + 1) << "t=" << t << " bucket=" << bucket;
      }
    }
  }
  session.finish();
}

TEST(CdffBinary, NoRowEverNeedsASecondBin) {
  // In sigma_mu every row's first bin suffices (Lemma 5.5's proof): the
  // total count of bins ever opened equals the count of (row, episode)
  // pairs, and no two bins of the same row are ever open together.
  const int n = 7;
  const Instance in = make_binary_input(n);
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_TRUE(validate_run(in, r).ok());
  // No two bins with the same group (delta row) overlapping in time:
  for (std::size_t a = 0; a < r.bins.size(); ++a)
    for (std::size_t b = a + 1; b < r.bins.size(); ++b) {
      if (r.bins[a].group != r.bins[b].group) continue;
      const bool disjoint = r.bins[a].closed <= r.bins[b].opened ||
                            r.bins[b].closed <= r.bins[a].opened;
      EXPECT_TRUE(disjoint) << "bins " << a << "," << b;
    }
}

TEST(CdffBinary, Proposition53CostBound) {
  for (int n : {2, 3, 4, 6, 8, 10}) {
    const Instance in = make_binary_input(n);
    Cdff cdff;
    const Cost cost = run_cost(in, cdff);
    const double mu = pow2(n);
    // OPT_R(sigma_mu) >= mu (span bound); the paper's bound:
    const double bound =
        (2.0 * std::log2(std::max(1.0, static_cast<double>(n))) + 1.0) * mu;
    // Our lower bound on OPT_R:
    const double lb = opt::compute_bounds(in).lower();
    EXPECT_GE(lb, mu - kTimeEps);
    EXPECT_LE(cost, bound * 1.0001 + 1e-9) << "n=" << n;
  }
}

TEST(CdffBinary, CostEqualsSumOfExpectedCounts) {
  // CDFF(sigma_mu) = sum_t CDFF_{t+} exactly (unit-length instants).
  const int n = 5;
  const Instance in = make_binary_input(n);
  Cdff cdff;
  const Cost cost = run_cost(in, cdff);
  double expected = 0.0;
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(pow2(n)); ++t)
    expected += expected_cdff_bins(n, static_cast<std::uint64_t>(t));
  EXPECT_NEAR(cost, expected, 1e-9);
}

TEST(CdffBinary, BinaryInputShape) {
  const int n = 4;
  const Instance in = make_binary_input(n);
  EXPECT_EQ(in.size(), static_cast<std::size_t>(2 * 16 - 1));
  EXPECT_TRUE(in.is_aligned());
  EXPECT_TRUE(in.is_contiguous());
  EXPECT_DOUBLE_EQ(in.mu(), 16.0);
  // Every length active at every moment: S_t = (n+1) * 1/(n+1) = 1.
  const StepFunction f = in.load_profile();
  EXPECT_NEAR(f.max_value(), 1.0, 1e-12);
  EXPECT_NEAR(f.integral(), pow2(n), 1e-9);
}

}  // namespace
}  // namespace cdbp
