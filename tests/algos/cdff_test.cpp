#include "algos/cdff.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"
#include "workloads/aligned_random.h"

namespace cdbp {
namespace {

using algos::Cdff;
using testutil::make_instance;

TEST(Cdff, RejectsUnalignedInput) {
  // Length-4 item (bucket 2) at t=6 is not aligned.
  const Instance in = make_instance({{6.0, 10.0, 0.5}});
  Cdff cdff;
  EXPECT_THROW(Simulator{}.run(in, cdff), std::invalid_argument);
}

TEST(Cdff, RejectsFractionalArrival) {
  const Instance in = make_instance({{0.5, 1.5, 0.5}});
  Cdff cdff;
  EXPECT_THROW(Simulator{}.run(in, cdff), std::invalid_argument);
}

TEST(Cdff, SingleItem) {
  const Instance in = make_instance({{0.0, 8.0, 0.5}});
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_EQ(r.bins_opened, 1u);
  EXPECT_DOUBLE_EQ(r.cost, 8.0);
}

TEST(Cdff, RowsSeparateBucketsAtSegmentStart) {
  // At t=0 each duration bucket gets its own row.
  const Instance in = make_instance({
      {0.0, 8.0, 0.2},  // bucket 3
      {0.0, 4.0, 0.2},  // bucket 2
      {0.0, 1.0, 0.2},  // bucket 0
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_EQ(r.bins_opened, 3u);
  // Groups encode the delta row key == bucket at segment start.
  EXPECT_EQ(r.bins[0].group, 3);
  EXPECT_EQ(r.bins[1].group, 2);
  EXPECT_EQ(r.bins[2].group, 0);
}

TEST(Cdff, DynamicRowMappingSharesTopRow) {
  // sigma_8-style: the length-8 item at t=0 goes to the top row; at t=2,
  // m_t = 1, so the length-2 item also maps to the top row (delta = 3) and
  // shares the bin (loads permitting) — the essence of Algorithm 2.
  const Instance in = make_instance({
      {0.0, 8.0, 0.2},  // bucket 3, t=0 -> delta 3
      {2.0, 4.0, 0.2},  // bucket 1, t=2: m=1 -> delta = 1 + (3-1) = 3
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_EQ(r.bins_opened, 1u);
  EXPECT_EQ(r.placements[0].bin, r.placements[1].bin);
}

TEST(Cdff, FirstFitWithinRow) {
  const Instance in = make_instance({
      {0.0, 1.0, 0.7},  // row 0 bin 1
      {0.0, 1.0, 0.7},  // row 0 bin 2
      {0.0, 1.0, 0.2},  // fits row 0 bin 1
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_EQ(r.bins_opened, 2u);
  EXPECT_EQ(r.placements[2].bin, r.placements[0].bin);
}

TEST(Cdff, SegmentationSplitsDisjointBlocks) {
  // Block A: lengths <= 2 around t=0 (mu_0 = 2). Block B starts at t=8.
  const Instance in = make_instance({
      {0.0, 2.0, 0.5},
      {1.0, 2.0, 0.5},
      {8.0, 16.0, 0.5},
      {8.0, 9.0, 0.4},
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_TRUE(validate_run(in, r).ok());
  EXPECT_EQ(cdff.segment_count(), 2u);
}

TEST(Cdff, SegmentHorizonGrowsDuringOpeningInstant) {
  // The first item at t=0 is short; a longer one at the same instant must
  // raise the segment horizon, keeping the t=4 item in the same segment.
  const Instance in = make_instance({
      {0.0, 1.0, 0.3},   // bucket 0 first
      {0.0, 8.0, 0.3},   // bucket 3 raises n to 3
      {4.0, 8.0, 0.3},   // still inside [0, 8)
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_TRUE(validate_run(in, r).ok());
  EXPECT_EQ(cdff.segment_count(), 1u);
  EXPECT_EQ(cdff.segment_exponent(), 3);
}

TEST(Cdff, RowBinsCloseAndReindex) {
  // Bucket-0 items at consecutive integers: each bin closes before the
  // next arrival (the row empties in between).
  const Instance in = make_instance({
      {0.0, 1.0, 0.9},
      {1.0, 2.0, 0.9},
      {2.0, 3.0, 0.9},
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_EQ(r.bins_opened, 3u);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
}

TEST(Cdff, NonPow2LengthsClassifiedByBucket) {
  // Length 3 is bucket 2 -> arrives at multiples of 4, departs within.
  const Instance in = make_instance({
      {0.0, 3.0, 0.5},
      {4.0, 7.0, 0.5},
  });
  Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  EXPECT_TRUE(validate_run(in, r).ok());
  EXPECT_EQ(r.bins_opened, 2u);
}

TEST(Cdff, ArrivalOrderWithinInstantDoesNotChangeBinCount) {
  std::mt19937_64 rng(42);
  workloads::AlignedConfig cfg;
  cfg.n = 5;
  cfg.max_bucket = 5;
  cfg.arrivals_per_slot = 0.8;
  Instance base = workloads::make_aligned_random(cfg, rng);

  Cdff a;
  const RunResult r1 = Simulator{}.run(base, a);

  // Reverse the presentation order within each arrival instant.
  std::vector<Item> items = base.items();
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& x, const Item& y) {
                     return x.arrival < y.arrival;
                   });
  std::vector<Item> reversed;
  std::size_t i = 0;
  while (i < items.size()) {
    std::size_t j = i;
    while (j < items.size() && items[j].arrival == items[i].arrival) ++j;
    for (std::size_t k = j; k > i; --k) reversed.push_back(items[k - 1]);
    i = j;
  }
  Instance perm{reversed};
  Cdff b;
  const RunResult r2 = Simulator{}.run(perm, b);
  // Costs may differ slightly (First-Fit inside a row is order-dependent),
  // but both runs must be valid and segment identically.
  EXPECT_TRUE(validate_run(perm, r2).ok());
  EXPECT_EQ(a.segment_count(), b.segment_count());
}

TEST(Cdff, RowQueriesDuringRun) {
  Cdff cdff;
  InteractiveSession session(cdff);
  const BinId top = session.offer(0.0, 8.0, 0.5);
  const BinId low = session.offer(0.0, 1.0, 0.5);
  EXPECT_EQ(cdff.row_of(top), 3);
  EXPECT_EQ(cdff.paper_row_of(top), 0);  // longest items sit in paper row 0
  EXPECT_EQ(cdff.row_of(low), 0);
  EXPECT_EQ(cdff.paper_row_of(low), 3);
  EXPECT_EQ(cdff.row_bins(3).size(), 1u);
  EXPECT_EQ(cdff.row_bins(7).size(), 0u);
  EXPECT_EQ(cdff.row_of(999), -1);
  session.finish();
}

TEST(Cdff, ValidOnRandomAlignedInputs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::mt19937_64 rng(seed);
    workloads::AlignedConfig cfg;
    cfg.n = 6;
    cfg.max_bucket = 6;
    cfg.arrivals_per_slot = 1.2;
    cfg.pow2_lengths = (seed % 2 == 0);
    const Instance in = workloads::make_aligned_random(cfg, rng);
    ASSERT_TRUE(in.is_aligned());
    Cdff cdff;
    const RunResult r = Simulator{}.run(in, cdff);
    EXPECT_TRUE(validate_run(in, r).ok()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cdbp
