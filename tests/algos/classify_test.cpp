#include "algos/classify.h"

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Classify, ClassOfBase2) {
  const algos::ClassifyByDuration cbd(2.0);
  EXPECT_EQ(cbd.class_of(1.0), 0);
  EXPECT_EQ(cbd.class_of(2.0), 1);
  EXPECT_EQ(cbd.class_of(3.0), 2);
  EXPECT_EQ(cbd.class_of(4.0), 2);
  EXPECT_EQ(cbd.class_of(1024.0), 10);
  EXPECT_EQ(cbd.class_of(0.5), -1);
  EXPECT_THROW((void)cbd.class_of(0.0), std::invalid_argument);
}

TEST(Classify, ClassOfLargeBase) {
  const algos::ClassifyByDuration cbd(10.0);
  EXPECT_EQ(cbd.class_of(1.0), 0);
  EXPECT_EQ(cbd.class_of(10.0), 1);
  EXPECT_EQ(cbd.class_of(11.0), 2);
  EXPECT_EQ(cbd.class_of(100.0), 2);
}

TEST(Classify, RejectsBadBase) {
  EXPECT_THROW(algos::ClassifyByDuration(1.0), std::invalid_argument);
  EXPECT_THROW(algos::ClassifyByDuration(0.5), std::invalid_argument);
}

TEST(Classify, DifferentClassesNeverShareBins) {
  const Instance in = make_instance({
      {0.0, 1.0, 0.1},    // class 0
      {0.0, 8.0, 0.1},    // class 3
      {0.0, 1.0, 0.1},    // class 0 again
      {0.0, 7.0, 0.1},    // class 3 again
  });
  algos::ClassifyByDuration cbd(2.0);
  const RunResult r = Simulator{}.run(in, cbd);
  EXPECT_EQ(r.bins_opened, 2u);
  EXPECT_EQ(r.placements[0].bin, r.placements[2].bin);
  EXPECT_EQ(r.placements[1].bin, r.placements[3].bin);
  EXPECT_NE(r.placements[0].bin, r.placements[1].bin);
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(Classify, FirstFitWithinClass) {
  const Instance in = make_instance({
      {0.0, 1.0, 0.7},
      {0.0, 1.0, 0.7},  // second class-0 bin
      {0.0, 1.0, 0.2},  // joins the first class-0 bin
  });
  algos::ClassifyByDuration cbd(2.0);
  const RunResult r = Simulator{}.run(in, cbd);
  EXPECT_EQ(r.placements[2].bin, r.placements[0].bin);
}

TEST(Classify, ClosedClassBinsForgotten) {
  const Instance in = make_instance({
      {0.0, 1.0, 0.5},
      {2.0, 3.0, 0.5},  // same class, but the earlier bin closed
  });
  algos::ClassifyByDuration cbd(2.0);
  const RunResult r = Simulator{}.run(in, cbd);
  EXPECT_EQ(r.bins_opened, 2u);
}

TEST(Classify, BinGroupEncodesClass) {
  const Instance in = make_instance({{0.0, 8.0, 0.5}});
  algos::ClassifyByDuration cbd(2.0);
  const RunResult r = Simulator{}.run(in, cbd);
  ASSERT_EQ(r.bins.size(), 1u);
  EXPECT_EQ(r.bins[0].group, 3);  // length 8 -> class 3
}

TEST(Classify, NameIncludesBase) {
  EXPECT_EQ(algos::ClassifyByDuration(2.0).name(), "CBD(base=2)");
}

TEST(Classify, ShiftSlidesClassBoundaries) {
  // shift 0.5: boundaries at 2^{k+0.5} = ..., 1.41, 2.83, 5.66, ...
  const algos::ClassifyByDuration cbd(2.0, algos::FitRule::kFirst, 0.5);
  EXPECT_EQ(cbd.class_of(1.0), 0);
  EXPECT_EQ(cbd.class_of(1.4), 0);
  EXPECT_EQ(cbd.class_of(1.5), 1);
  EXPECT_EQ(cbd.class_of(2.82), 1);   // just under 2^{1.5} = 2.8284
  EXPECT_EQ(cbd.class_of(2.9), 2);
  EXPECT_NE(cbd.name().find("shift=0.5"), std::string::npos);
}

TEST(Classify, ShiftValidation) {
  EXPECT_THROW(algos::ClassifyByDuration(2.0, algos::FitRule::kFirst, 1.0),
               std::invalid_argument);
  EXPECT_THROW(algos::ClassifyByDuration(2.0, algos::FitRule::kFirst, -0.1),
               std::invalid_argument);
}

TEST(Classify, ShiftDodgesBoundaryAdversarialLengths) {
  // Lengths just above every power of two: shift-0 classify almost doubles
  // each class window; shift-0.5 classifies them tightly.
  Instance in;
  for (int k = 1; k <= 8; ++k)
    for (int j = 0; j < 4; ++j) in.add(0.0, pow2(k) * 1.01, 0.05);
  in.finalize();
  algos::ClassifyByDuration plain(2.0);
  algos::ClassifyByDuration shifted(2.0, algos::FitRule::kFirst, 0.5);
  // Same bins per class either way (one per class, items are tiny), but
  // the class index differs: plain puts 2^k*1.01 into class k+1.
  EXPECT_EQ(plain.class_of(2.02), 2);
  EXPECT_EQ(shifted.class_of(2.02), 1);
  // Both runs are valid.
  const RunResult r1 = Simulator{}.run(in, plain);
  const RunResult r2 = Simulator{}.run(in, shifted);
  EXPECT_TRUE(validate_run(in, r1).ok());
  EXPECT_TRUE(validate_run(in, r2).ok());
}

TEST(RandomizedClassify, RedrawsShiftPerRun) {
  algos::RandomizedClassify rand(42);
  const double s1 = rand.shift();
  rand.reset();
  const double s2 = rand.shift();
  rand.reset();
  const double s3 = rand.shift();
  EXPECT_TRUE(s1 != s2 || s2 != s3);  // astronomically unlikely otherwise
  for (double s : {s1, s2, s3}) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(RandomizedClassify, DeterministicForFixedSeed) {
  algos::RandomizedClassify a(7), b(7);
  const Instance in = make_instance({{0.0, 3.0, 0.5}, {0.0, 5.0, 0.5}});
  EXPECT_DOUBLE_EQ(run_cost(in, a), run_cost(in, b));
  EXPECT_NE(algos::RandomizedClassify(1).name().find("RandCBD"),
            std::string::npos);
}

TEST(RandomizedClassify, ValidAcrossRuns) {
  algos::RandomizedClassify rand(99);
  Instance in;
  for (int k = 0; k < 60; ++k)
    in.add(static_cast<Time>(k % 5), static_cast<Time>(k % 5) + 1.0 + k % 9,
           0.15);
  in.finalize();
  for (int run = 0; run < 5; ++run) {
    const RunResult r = Simulator{}.run(in, rand);
    EXPECT_TRUE(validate_run(in, r).ok()) << "run " << run;
  }
}

TEST(RenEtAlBase, MatchesFormula) {
  // mu = 2^16: log mu = 16, log log mu = 4 -> n = 4, base = 2^4 = 16.
  EXPECT_NEAR(algos::ren_et_al_base(65536.0), 16.0, 1e-9);
  // Small mu degenerates to base 2.
  EXPECT_DOUBLE_EQ(algos::ren_et_al_base(2.0), 2.0);
  // Base is always > 1.
  for (double mu : {4.0, 64.0, 1e6, 1e12})
    EXPECT_GT(algos::ren_et_al_base(mu), 1.0);
}

TEST(Classify, RenBaseBeatsBase2OnGeometricLadders) {
  // Repeated full ladders of durations: base-2 CBD opens one bin per
  // duration class, the coarser Ren base opens ~log mu / log log mu.
  Instance in;
  const int n = 12;
  for (int burst = 0; burst < 4; ++burst) {
    const Time t = static_cast<Time>(burst) * 4096.0;
    for (int i = 0; i <= n; ++i) in.add(t, t + pow2(i), 0.05);
  }
  in.finalize();
  algos::ClassifyByDuration cbd2(2.0);
  algos::ClassifyByDuration cbdren(algos::ren_et_al_base(pow2(n)));
  const Cost c2 = run_cost(in, cbd2);
  const Cost cren = run_cost(in, cbdren);
  EXPECT_LT(cren, c2);
}

}  // namespace
}  // namespace cdbp
