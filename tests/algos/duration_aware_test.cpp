#include "algos/duration_aware.h"

#include <random>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/simulator.h"
#include "core/validation.h"
#include "opt/bounds.h"
#include "test_util.h"
#include "workloads/cloud_gaming.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using algos::DurationAwareFit;
using algos::DurationPolicy;
using testutil::make_instance;

TEST(DurationAware, Names) {
  EXPECT_EQ(DurationAwareFit{}.name(), "DurationAware(MinExtension)");
  EXPECT_EQ(DurationAwareFit{DurationPolicy::kNoExtensionFirst}.name(),
            "DurationAware(NoExtensionFirst)");
}

TEST(DurationAware, PrefersBinWhoseHorizonCoversTheItem) {
  // Bin A: horizon 10 (long item). Bin B: horizon 2. A short item fits
  // both; placing it in A costs 0 extra usage time, in B it would extend.
  const Instance in = make_instance({
      {0.0, 10.0, 0.6},  // bin A
      {0.0, 2.0, 0.6},   // bin B
      {1.0, 4.0, 0.3},   // covered by A's horizon; extends B by 2
  });
  DurationAwareFit dfit;
  const RunResult r = Simulator{}.run(in, dfit);
  EXPECT_EQ(r.placements[2].bin, r.placements[0].bin);
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(DurationAware, MinExtensionPicksCheapestExtension) {
  // No zero-cost bin: horizons 2 and 3, item departs at 5 -> extending
  // the horizon-3 bin costs 2, the horizon-2 bin costs 3, new bin costs 4.
  const Instance in = make_instance({
      {0.0, 2.0, 0.5},   // bin 0, horizon 2
      {0.0, 3.0, 0.5},   // bin 1, horizon 3
      {1.0, 5.0, 0.3},   // extension costs: 3 vs 2; new = 4
  });
  DurationAwareFit dfit;
  const RunResult r = Simulator{}.run(in, dfit);
  EXPECT_EQ(r.placements[2].bin, 1);
}

TEST(DurationAware, OpensNewBinWhenCheaper) {
  // Extending any open bin would cost more than the item's own length.
  const Instance in = make_instance({
      {0.0, 2.0, 0.5},    // horizon 2
      {1.5, 12.0, 0.3},   // extension cost 10 > own length 10.5? no:
                          // own length 10.5, extension 10 -> extends
  });
  DurationAwareFit dfit;
  const RunResult r1 = Simulator{}.run(in, dfit);
  EXPECT_EQ(r1.bins_opened, 1u);  // extension (10) < new bin (10.5)

  const Instance in2 = make_instance({
      {0.0, 2.0, 0.5},
      {1.9, 3.0, 0.3},  // extension 1.0 < own length 1.1 -> shares
      {1.95, 2.0, 0.8},  // does not fit bin 0 -> new bin
  });
  const RunResult r2 = Simulator{}.run(in2, dfit);
  EXPECT_EQ(r2.bins_opened, 2u);
}

TEST(DurationAware, NoExtensionFirstPrefersFullestCoveredBin) {
  // Two bins whose horizons cover the item; policy picks the fuller one.
  // (Sizes chosen so the first two items cannot share a bin.)
  const Instance in = make_instance({
      {0.0, 10.0, 0.55},  // bin 0
      {0.0, 10.0, 0.60},  // bin 1 (fuller)
      {1.0, 5.0, 0.3},
  });
  DurationAwareFit ne(DurationPolicy::kNoExtensionFirst);
  const RunResult r = Simulator{}.run(in, ne);
  EXPECT_EQ(r.placements[2].bin, 1);

  // MinExtension (tie at cost 0) keeps the earliest-opened bin instead.
  DurationAwareFit me(DurationPolicy::kMinExtension);
  const RunResult r2 = Simulator{}.run(in, me);
  EXPECT_EQ(r2.placements[2].bin, 0);
}

TEST(DurationAware, HorizonTracksDepartures) {
  DurationAwareFit dfit;
  InteractiveSession session(dfit);
  const BinId b = session.offer(0.0, 10.0, 0.3);
  session.offer(0.0, 4.0, 0.3);  // same bin (covered)
  EXPECT_DOUBLE_EQ(dfit.horizon_of(b), 10.0);
  session.advance_to(5.0);  // the 4-departure leaves
  EXPECT_DOUBLE_EQ(dfit.horizon_of(b), 10.0);
  session.finish();
}

TEST(DurationAware, HorizonShrinksWhenDefinerWasNeverTheMax) {
  DurationAwareFit dfit;
  InteractiveSession session(dfit);
  const BinId b = session.offer(0.0, 4.0, 0.3);
  EXPECT_DOUBLE_EQ(dfit.horizon_of(b), 4.0);
  const BinId b2 = session.offer(0.0, 10.0, 0.9);  // cannot fit? 0.9+0.3
  EXPECT_NE(b, b2);
  session.finish();
}

TEST(DurationAware, BeatsFirstFitOnRiderTraps) {
  // The two-phase family: a light long rider after each heavy short item.
  // First-Fit lets riders contaminate short bins; MinExtension refuses the
  // costly extension and groups riders.
  std::mt19937_64 rng(3);
  workloads::GeneralConfig cfg;
  cfg.shape = workloads::GeneralShape::kTwoPhase;
  cfg.log2_mu = 8;
  cfg.target_items = 200;
  cfg.horizon = 64.0;
  const Instance in = workloads::make_general_random(cfg, rng);
  DurationAwareFit dfit;
  algos::FirstFit ff;
  EXPECT_LT(run_cost(in, dfit), run_cost(in, ff));
}

class DurationAwareRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DurationAwareRandom, ValidAndAboveLowerBound) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 150;
  cfg.log2_mu = 7;
  cfg.shape = GetParam() % 2 == 0 ? workloads::GeneralShape::kLogUniform
                                  : workloads::GeneralShape::kGeometricBursts;
  const Instance in = workloads::make_general_random(cfg, rng);
  for (auto policy : {DurationPolicy::kMinExtension,
                      DurationPolicy::kNoExtensionFirst}) {
    DurationAwareFit dfit(policy);
    const RunResult r = Simulator{}.run(in, dfit);
    EXPECT_TRUE(validate_run(in, r).ok()) << to_string(policy);
    EXPECT_GE(r.cost, opt::compute_bounds(in).lower() - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurationAwareRandom,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(DurationAware, ResetClearsState) {
  const Instance in = make_instance({{0.0, 5.0, 0.5}});
  DurationAwareFit dfit;
  const RunResult r1 = Simulator{}.run(in, dfit);
  const RunResult r2 = Simulator{}.run(in, dfit);
  EXPECT_DOUBLE_EQ(r1.cost, r2.cost);
}

}  // namespace
}  // namespace cdbp
