#include "algos/harmonic.h"

#include <random>

#include <gtest/gtest.h>

#include "algos/classify.h"
#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using algos::HarmonicFit;
using testutil::make_instance;

TEST(Harmonic, ClassOf) {
  const HarmonicFit h(4);
  EXPECT_EQ(h.class_of(0.9), 1);    // (1/2, 1]
  EXPECT_EQ(h.class_of(0.51), 1);
  EXPECT_EQ(h.class_of(0.5), 2);    // (1/3, 1/2]
  EXPECT_EQ(h.class_of(0.3), 3);    // (1/4, 1/3]
  EXPECT_EQ(h.class_of(0.25), 4);   // catch-all (0, 1/4]
  EXPECT_EQ(h.class_of(0.01), 4);
  EXPECT_THROW((void)h.class_of(0.0), std::invalid_argument);
  EXPECT_THROW((void)h.class_of(1.5), std::invalid_argument);
}

TEST(Harmonic, RejectsBadClassCount) {
  EXPECT_THROW(HarmonicFit(0), std::invalid_argument);
}

TEST(Harmonic, ClassesNeverShareBins) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.6},   // class 1
      {0.0, 4.0, 0.4},   // class 2
      {0.0, 4.0, 0.1},   // catch-all
  });
  HarmonicFit h(4);
  const RunResult r = Simulator{}.run(in, h);
  EXPECT_EQ(r.bins_opened, 3u);
  EXPECT_NE(r.placements[0].bin, r.placements[1].bin);
  EXPECT_NE(r.placements[1].bin, r.placements[2].bin);
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(Harmonic, ClassKBinsHoldKItems) {
  // Three (1/3, 1/2] items: two share a bin, the third opens another.
  const Instance in = make_instance({
      {0.0, 4.0, 0.4}, {0.0, 4.0, 0.4}, {0.0, 4.0, 0.4},
  });
  HarmonicFit h(4);
  const RunResult r = Simulator{}.run(in, h);
  EXPECT_EQ(r.bins_opened, 2u);
  EXPECT_EQ(r.placements[0].bin, r.placements[1].bin);
}

TEST(Harmonic, BinGroupEncodesClass) {
  const Instance in = make_instance({{0.0, 2.0, 0.7}});
  HarmonicFit h(4);
  const RunResult r = Simulator{}.run(in, h);
  EXPECT_EQ(r.bins[0].group, 1);
}

TEST(Harmonic, ClosedBinsForgotten) {
  const Instance in = make_instance({{0.0, 1.0, 0.4}, {2.0, 3.0, 0.4}});
  HarmonicFit h(4);
  const RunResult r = Simulator{}.run(in, h);
  EXPECT_EQ(r.bins_opened, 2u);
}

class HarmonicRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarmonicRandom, ValidOnRandomWorkloads) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 150;
  cfg.log2_mu = 6;
  cfg.size_max = 0.95;
  const Instance in = workloads::make_general_random(cfg, rng);
  for (int classes : {1, 3, 8}) {
    HarmonicFit h(classes);
    const RunResult r = Simulator{}.run(in, h);
    EXPECT_TRUE(validate_run(in, r).ok()) << classes;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarmonicRandom,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(Harmonic, SizeClassificationCannotContainDurationMixing) {
  // Same sizes, wildly different durations: Harmonic mixes a mu-length
  // item into a bin with ephemeral ones and pays for it, while
  // duration-classify isolates the long item.
  Instance in;
  in.add(0.0, 256.0, 0.3);  // long
  for (int k = 0; k < 30; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(k) + 1.0, 0.3);
  in.finalize();
  HarmonicFit h(4);
  algos::ClassifyByDuration cbd(2.0);
  EXPECT_GT(run_cost(in, h), 0.0);
  // Not asserting an ordering here — both are heuristics — but the runs
  // must be valid and the costs finite.
  const RunResult rh = Simulator{}.run(in, h);
  const RunResult rc = Simulator{}.run(in, cbd);
  EXPECT_TRUE(validate_run(in, rh).ok());
  EXPECT_TRUE(validate_run(in, rc).ok());
}

}  // namespace
}  // namespace cdbp
