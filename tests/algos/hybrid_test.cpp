#include "algos/hybrid.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"

namespace cdbp {
namespace {

using algos::Hybrid;
using algos::kHybridGroupCD;
using algos::kHybridGroupGN;
using testutil::make_instance;

TEST(Hybrid, PaperThresholdFormula) {
  EXPECT_DOUBLE_EQ(Hybrid::paper_threshold(1), 0.5);
  EXPECT_DOUBLE_EQ(Hybrid::paper_threshold(4), 0.25);
  EXPECT_NEAR(Hybrid::paper_threshold(16), 0.125, 1e-12);
}

TEST(Hybrid, LightTypeGoesToGN) {
  // One small item of class i=1: load 0.2 <= 1/(2*sqrt(1)) = 0.5 -> GN.
  const Instance in = make_instance({{0.0, 2.0, 0.2}});
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 1u);
  EXPECT_EQ(r.bins[0].group, kHybridGroupGN);
}

TEST(Hybrid, HeavyTypeOpensCdBin) {
  // Class i=1 threshold is 0.5: a 0.6 item exceeds it immediately -> CD.
  const Instance in = make_instance({{0.0, 2.0, 0.6}});
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 1u);
  EXPECT_EQ(r.bins[0].group, kHybridGroupCD);
}

TEST(Hybrid, AccumulatedTypeLoadTriggersSwitch) {
  // Three 0.2-items of the same type (i=1, c=0): loads 0.2, 0.4, 0.6.
  // The third pushes the type load over 0.5 and must open a CD bin.
  const Instance in = make_instance({
      {0.0, 2.0, 0.2},
      {0.0, 2.0, 0.2},
      {0.0, 2.0, 0.2},
  });
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 2u);
  EXPECT_EQ(r.bins[0].group, kHybridGroupGN);
  EXPECT_EQ(r.bins[0].all_items.size(), 2u);
  EXPECT_EQ(r.bins[1].group, kHybridGroupCD);
  EXPECT_EQ(r.bins[1].all_items.size(), 1u);
}

TEST(Hybrid, OnceCdExistsTypeStaysCd) {
  // After the switch, later same-type items go to the CD bin even though
  // they would fit in GN bins.
  const Instance in = make_instance({
      {0.0, 2.0, 0.3},
      {0.0, 2.0, 0.3},  // load 0.6 > 0.5 -> CD bin
      {0.0, 2.0, 0.1},  // same type, load 0.7: stays with CD
  });
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 2u);
  EXPECT_EQ(r.placements[1].bin, r.placements[2].bin);
  EXPECT_EQ(r.bins[1].group, kHybridGroupCD);
}

TEST(Hybrid, CdBinsAreTypePrivate) {
  // Two heavy types (different duration classes) never share CD bins.
  const Instance in = make_instance({
      {0.0, 2.0, 0.6},    // type (1, 0) -> CD
      {0.0, 32.0, 0.2},   // type (5, 0): 0.2 > 1/(2*sqrt(5))=0.2236? no ->
                          // GN
      {0.0, 32.0, 0.2},   // type (5, 0) load 0.4 > 0.2236 -> CD
  });
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 3u);
  EXPECT_NE(r.placements[0].bin, r.placements[2].bin);
}

TEST(Hybrid, DepartureReleasesTypeLoad) {
  // Type load decays on departures, so a later same-type item goes GN again
  // (the CD bin has closed).
  const Instance in = make_instance({
      {0.0, 1.5, 0.4},
      {0.0, 1.5, 0.4},  // 0.8 > 0.5 -> CD
      {2.0, 3.5, 0.3},  // same class, new phase c, load 0.3 -> GN
  });
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 3u);
  EXPECT_EQ(r.bins[static_cast<std::size_t>(r.placements[2].bin)].group,
            kHybridGroupGN);
}

TEST(Hybrid, CdOverflowOpensSecondCdBin) {
  // Type goes CD, then more same-type items than one bin can hold.
  const Instance in = make_instance({
      {0.0, 2.0, 0.6},  // CD bin 1
      {0.0, 2.0, 0.6},  // does not fit -> CD bin 2
      {0.0, 2.0, 0.3},  // first-fit among CD bins -> bin 1
  });
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  ASSERT_EQ(r.bins.size(), 2u);
  EXPECT_EQ(r.placements[2].bin, r.placements[0].bin);
  EXPECT_EQ(r.bins[0].group, kHybridGroupCD);
  EXPECT_EQ(r.bins[1].group, kHybridGroupCD);
}

TEST(Hybrid, GnBinBoundLemma33) {
  // Lemma 3.3: GN_t <= 2 + 4*sqrt(log mu). Stress with many light types.
  Hybrid ha;
  InteractiveSession session(ha);
  const int n = 10;  // classes 1..10, mu = 2^10
  std::size_t peak_gn = 0;
  for (int i = 1; i <= n; ++i) {
    // Fill type (i, 0) right up to its threshold with small items.
    const double thr = Hybrid::paper_threshold(i);
    const int count = static_cast<int>(thr / 0.02);
    for (int k = 0; k < count; ++k) {
      session.offer(0.0, pow2(i), 0.02);
      peak_gn = std::max(peak_gn, ha.gn_open_count());
    }
  }
  const double bound = 2.0 + 4.0 * std::sqrt(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(peak_gn), bound);
  session.finish();
}

TEST(Hybrid, AdaptsWithoutKnowingMu) {
  // Feeding progressively longer items must not break anything; type
  // indices simply grow.
  Instance in;
  for (int i = 1; i <= 20; ++i) in.add(0.0, pow2(i), 0.01);
  in.finalize();
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  EXPECT_TRUE(validate_run(in, r).ok());
  EXPECT_EQ(r.bins_opened, 1u);  // all light, all fit in one GN bin
}

TEST(Hybrid, CustomThresholdChangesBehaviour) {
  // threshold = 0: every item opens/joins CD immediately (pure classify).
  Hybrid pure_cd([](int) { return 0.0; }, "CD-only");
  const Instance in = make_instance({{0.0, 2.0, 0.1}, {0.0, 4.0, 0.1}});
  const RunResult r = Simulator{}.run(in, pure_cd);
  EXPECT_EQ(r.bins_opened, 2u);  // different classes -> different CD bins
  for (const auto& bin : r.bins) EXPECT_EQ(bin.group, kHybridGroupCD);
  EXPECT_EQ(pure_cd.name(), "CD-only");

  // threshold = +inf: pure First-Fit over GN bins.
  Hybrid pure_ff([](int) { return 1e18; }, "FF-only");
  const RunResult r2 = Simulator{}.run(in, pure_ff);
  EXPECT_EQ(r2.bins_opened, 1u);
  EXPECT_EQ(r2.bins[0].group, kHybridGroupGN);
}

TEST(Hybrid, ActiveLoadQueries) {
  Hybrid ha;
  InteractiveSession session(ha);
  session.offer(0.0, 2.0, 0.2);
  session.offer(0.0, 2.0, 0.15);
  EXPECT_NEAR(ha.active_load(DurationType{1, 0}), 0.35, 1e-12);
  EXPECT_DOUBLE_EQ(ha.active_load(DurationType{2, 0}), 0.0);
  session.advance_to(3.0);
  EXPECT_DOUBLE_EQ(ha.active_load(DurationType{1, 0}), 0.0);
  session.finish();
}

TEST(Hybrid, Footnote1AnyFitRulesAllWork) {
  // Paper footnote 1: "using any Any-Fit approach towards packing items
  // into the GN-type bins or the CD-type bins will work just as well."
  Instance in;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> size(0.05, 0.5);
  std::uniform_real_distribution<double> arr(0.0, 30.0);
  std::uniform_int_distribution<int> cls(0, 5);
  for (int k = 0; k < 150; ++k) {
    const Time a = arr(rng);
    in.add(a, a + pow2(cls(rng)), size(rng));
  }
  in.finalize();
  for (auto rule : {algos::FitRule::kFirst, algos::FitRule::kBest,
                    algos::FitRule::kWorst}) {
    Hybrid ha(&Hybrid::paper_threshold, "HA-" + to_string(rule), rule);
    const RunResult r = Simulator{}.run(in, ha);
    EXPECT_TRUE(validate_run(in, r).ok()) << to_string(rule);
    // The GN bound of Lemma 3.3 is rule-independent.
    InteractiveSession session(ha);
    std::size_t peak = 0;
    for (const Item& item : in.items()) {
      session.offer(item.arrival, item.departure, item.size);
      peak = std::max(peak, ha.gn_open_count());
    }
    session.finish();
    EXPECT_LE(static_cast<double>(peak), 2.0 + 4.0 * std::sqrt(6.0))
        << to_string(rule);
  }
}

TEST(Hybrid, RejectsNullThreshold) {
  EXPECT_THROW(Hybrid(Hybrid::Threshold{}), std::invalid_argument);
}

TEST(Hybrid, ValidOnMixedWorkload) {
  Instance in;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> size(0.05, 0.6);
  std::uniform_real_distribution<double> arr(0.0, 50.0);
  std::uniform_int_distribution<int> cls(0, 6);
  for (int k = 0; k < 200; ++k) {
    const Time a = arr(rng);
    in.add(a, a + pow2(cls(rng)), size(rng));
  }
  in.finalize();
  Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  EXPECT_TRUE(validate_run(in, r).ok());
}

}  // namespace
}  // namespace cdbp
