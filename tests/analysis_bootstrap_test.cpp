#include "analysis/bootstrap.h"

#include <random>

#include <gtest/gtest.h>

namespace cdbp::analysis {
namespace {

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const auto ci = bootstrap_mean_ci({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(ci.point, 2.0);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0);
  EXPECT_DOUBLE_EQ(ci.hi, 2.0);
}

TEST(Bootstrap, CoversTheMean) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> noise(10.0, 2.0);
  std::vector<double> sample;
  for (int k = 0; k < 60; ++k) sample.push_back(noise(rng));
  const auto ci = bootstrap_mean_ci(sample);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, 10.0, 1.5);
  EXPECT_LT(ci.hi - ci.lo, 3.0);  // n = 60, sd = 2 => width ~ 1
}

TEST(Bootstrap, DeterministicForFixedSeed) {
  const std::vector<double> sample = {1.0, 3.0, 2.0, 5.0, 4.0};
  const auto a = bootstrap_mean_ci(sample, 0.9, 500, 7);
  const auto b = bootstrap_mean_ci(sample, 0.9, 500, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, WiderLevelWiderInterval) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> sample;
  for (int k = 0; k < 40; ++k) sample.push_back(u(rng));
  const auto narrow = bootstrap_mean_ci(sample, 0.5);
  const auto wide = bootstrap_mean_ci(sample, 0.99);
  EXPECT_LE(wide.lo, narrow.lo + 1e-12);
  EXPECT_GE(wide.hi, narrow.hi - 1e-12);
}

TEST(Bootstrap, Validation) {
  EXPECT_THROW((void)bootstrap_mean_ci({}), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 0.9, 1), std::invalid_argument);
}

TEST(Bootstrap, SingleValueSample) {
  const auto ci = bootstrap_mean_ci({7.0});
  EXPECT_DOUBLE_EQ(ci.point, 7.0);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

}  // namespace
}  // namespace cdbp::analysis
