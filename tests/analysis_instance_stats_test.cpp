#include "analysis/instance_stats.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/binary_input.h"

namespace cdbp::analysis {
namespace {

using testutil::make_instance;

TEST(InstanceStats, EmptyInstance) {
  const InstanceStats s = compute_instance_stats(Instance{});
  EXPECT_EQ(s.items, 0u);
  EXPECT_DOUBLE_EQ(s.mu, 1.0);
  EXPECT_TRUE(s.duration_class_histogram.empty());
}

TEST(InstanceStats, KnownInstance) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.5},   // class 2
      {0.0, 1.0, 0.25},  // class 0
      {1.0, 3.0, 0.75},  // class 1 at an odd arrival: breaks alignment
  });
  const InstanceStats s = compute_instance_stats(in);
  EXPECT_EQ(s.items, 3u);
  EXPECT_DOUBLE_EQ(s.mu, 4.0);
  EXPECT_DOUBLE_EQ(s.span, 4.0);
  EXPECT_DOUBLE_EQ(s.demand, 0.5 * 4 + 0.25 * 1 + 0.75 * 2);
  EXPECT_DOUBLE_EQ(s.peak_load, 1.25);
  EXPECT_EQ(s.max_concurrency, 2u);
  EXPECT_FALSE(s.aligned);
  EXPECT_EQ(s.duration_class_histogram.at(0), 1u);
  EXPECT_EQ(s.duration_class_histogram.at(1), 1u);
  EXPECT_EQ(s.duration_class_histogram.at(2), 1u);
  EXPECT_DOUBLE_EQ(s.sizes.max, 0.75);
  EXPECT_DOUBLE_EQ(s.lengths.median, 2.0);
}

TEST(InstanceStats, AlignedDetection) {
  const InstanceStats s =
      compute_instance_stats(workloads::make_binary_input(4));
  EXPECT_TRUE(s.aligned);
  EXPECT_TRUE(s.contiguous);
  EXPECT_NEAR(s.peak_load, 1.0, 1e-12);
  EXPECT_NEAR(s.mean_load, 1.0, 1e-12);
}

TEST(InstanceStats, RenderingMentionsKeyFields) {
  const Instance in = make_instance({{0.0, 8.0, 0.5}});
  const std::string text = to_string(compute_instance_stats(in));
  EXPECT_NE(text.find("mu:"), std::string::npos);
  EXPECT_NE(text.find("duration classes"), std::string::npos);
  EXPECT_NE(text.find("max concurrency"), std::string::npos);
}

}  // namespace
}  // namespace cdbp::analysis
