#include "analysis/sweep.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cdbp::analysis {
namespace {

RatioMeasurement meas(const std::string& algo, double cost, double lb,
                      double ub) {
  RatioMeasurement m;
  m.algorithm = algo;
  m.cost = cost;
  m.opt_lower = lb;
  m.opt_upper = ub;
  return m;
}

TEST(Sweep, AggregatesByAlgorithmAndMu) {
  const std::vector<SweepObservation> obs = {
      {16.0, meas("A", 10.0, 5.0, 8.0)},
      {16.0, meas("A", 20.0, 5.0, 8.0)},
      {16.0, meas("B", 12.0, 6.0, 6.0)},
      {64.0, meas("A", 30.0, 10.0, 15.0)},
  };
  const auto points = aggregate_sweep(obs);
  ASSERT_EQ(points.size(), 3u);
  // First-seen order: (A,16), (B,16), (A,64).
  EXPECT_EQ(points[0].algorithm, "A");
  EXPECT_DOUBLE_EQ(points[0].mu, 16.0);
  EXPECT_EQ(points[0].ratio_vs_lower.count, 2u);
  EXPECT_DOUBLE_EQ(points[0].ratio_vs_lower.mean, (2.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(points[0].ratio_vs_upper.mean, (10.0 / 8 + 20.0 / 8) / 2);
  EXPECT_DOUBLE_EQ(points[0].cost.mean, 15.0);
  EXPECT_EQ(points[1].algorithm, "B");
  EXPECT_DOUBLE_EQ(points[2].mu, 64.0);
}

TEST(Sweep, EmptyInput) {
  EXPECT_TRUE(aggregate_sweep({}).empty());
}

TEST(Sweep, RatioSeriesSortedByMu) {
  const std::vector<SweepObservation> obs = {
      {64.0, meas("A", 30.0, 10.0, 15.0)},
      {16.0, meas("A", 10.0, 5.0, 8.0)},
      {16.0, meas("B", 12.0, 6.0, 6.0)},
  };
  const auto points = aggregate_sweep(obs);
  const auto series = ratio_series(points, "A");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].x, 16.0);
  EXPECT_DOUBLE_EQ(series[0].y, 2.0);
  EXPECT_DOUBLE_EQ(series[1].x, 64.0);
  EXPECT_DOUBLE_EQ(series[1].y, 3.0);
  EXPECT_TRUE(ratio_series(points, "nope").empty());
}

// Regression: grouping used to key on the exact double value of mu, so the
// same nominal mu reached through two different float expression chains
// (pow vs ldexp vs repeated multiplication — routinely an ulp apart) split
// one sweep cell into several, deflating every per-cell sample count. The
// grouping must collapse ulp-level noise.
TEST(Sweep, UlpPerturbedMuLandsInOneBucket) {
  const double mu = std::pow(2.0, 10.0) * 1.1;  // non-dyadic: ulps matter
  const double mu_up =
      std::nextafter(mu, std::numeric_limits<double>::infinity());
  const double mu_dn =
      std::nextafter(mu, -std::numeric_limits<double>::infinity());
  ASSERT_NE(mu, mu_up);
  const std::vector<SweepObservation> obs = {
      {mu, meas("A", 10.0, 5.0, 8.0)},
      {mu_up, meas("A", 20.0, 5.0, 8.0)},
      {mu_dn, meas("A", 30.0, 5.0, 8.0)},
  };
  const auto points = aggregate_sweep(obs);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].ratio_vs_lower.count, 3u);
  EXPECT_DOUBLE_EQ(points[0].mu, mu);  // representative: first seen
}

TEST(Sweep, PercentLevelMuGridStaysSeparated) {
  // Tolerance must not over-merge: a dense sweep grid with 0.1% spacing
  // (far finer than any sweep we run) still gets one bucket per nominal mu.
  std::vector<SweepObservation> obs;
  double mu = 16.0;
  for (int k = 0; k < 50; ++k) {
    obs.push_back({mu, meas("A", 10.0, 5.0, 8.0)});
    mu *= 1.001;
  }
  EXPECT_EQ(aggregate_sweep(obs).size(), 50u);
}

TEST(Sweep, NonFiniteAndNonPositiveMuDoNotCollide) {
  const std::vector<SweepObservation> obs = {
      {0.0, meas("A", 10.0, 5.0, 8.0)},
      {-1.0, meas("A", 10.0, 5.0, 8.0)},
      {std::numeric_limits<double>::infinity(), meas("A", 10.0, 5.0, 8.0)},
  };
  EXPECT_EQ(aggregate_sweep(obs).size(), 3u);
}

TEST(Sweep, NominalMuSeparatesBuckets) {
  // Same algorithm, same measured values, different nominal mu: two
  // points, not one.
  const std::vector<SweepObservation> obs = {
      {16.0, meas("A", 10.0, 5.0, 8.0)},
      {32.0, meas("A", 10.0, 5.0, 8.0)},
  };
  EXPECT_EQ(aggregate_sweep(obs).size(), 2u);
}

}  // namespace
}  // namespace cdbp::analysis
