#include "analysis/sweep.h"

#include <gtest/gtest.h>

namespace cdbp::analysis {
namespace {

RatioMeasurement meas(const std::string& algo, double cost, double lb,
                      double ub) {
  RatioMeasurement m;
  m.algorithm = algo;
  m.cost = cost;
  m.opt_lower = lb;
  m.opt_upper = ub;
  return m;
}

TEST(Sweep, AggregatesByAlgorithmAndMu) {
  const std::vector<SweepObservation> obs = {
      {16.0, meas("A", 10.0, 5.0, 8.0)},
      {16.0, meas("A", 20.0, 5.0, 8.0)},
      {16.0, meas("B", 12.0, 6.0, 6.0)},
      {64.0, meas("A", 30.0, 10.0, 15.0)},
  };
  const auto points = aggregate_sweep(obs);
  ASSERT_EQ(points.size(), 3u);
  // First-seen order: (A,16), (B,16), (A,64).
  EXPECT_EQ(points[0].algorithm, "A");
  EXPECT_DOUBLE_EQ(points[0].mu, 16.0);
  EXPECT_EQ(points[0].ratio_vs_lower.count, 2u);
  EXPECT_DOUBLE_EQ(points[0].ratio_vs_lower.mean, (2.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(points[0].ratio_vs_upper.mean, (10.0 / 8 + 20.0 / 8) / 2);
  EXPECT_DOUBLE_EQ(points[0].cost.mean, 15.0);
  EXPECT_EQ(points[1].algorithm, "B");
  EXPECT_DOUBLE_EQ(points[2].mu, 64.0);
}

TEST(Sweep, EmptyInput) {
  EXPECT_TRUE(aggregate_sweep({}).empty());
}

TEST(Sweep, RatioSeriesSortedByMu) {
  const std::vector<SweepObservation> obs = {
      {64.0, meas("A", 30.0, 10.0, 15.0)},
      {16.0, meas("A", 10.0, 5.0, 8.0)},
      {16.0, meas("B", 12.0, 6.0, 6.0)},
  };
  const auto points = aggregate_sweep(obs);
  const auto series = ratio_series(points, "A");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].x, 16.0);
  EXPECT_DOUBLE_EQ(series[0].y, 2.0);
  EXPECT_DOUBLE_EQ(series[1].x, 64.0);
  EXPECT_DOUBLE_EQ(series[1].y, 3.0);
  EXPECT_TRUE(ratio_series(points, "nope").empty());
}

TEST(Sweep, NominalMuSeparatesBuckets) {
  // Same algorithm, same measured values, different nominal mu: two
  // points, not one.
  const std::vector<SweepObservation> obs = {
      {16.0, meas("A", 10.0, 5.0, 8.0)},
      {32.0, meas("A", 10.0, 5.0, 8.0)},
  };
  EXPECT_EQ(aggregate_sweep(obs).size(), 2u);
}

}  // namespace
}  // namespace cdbp::analysis
