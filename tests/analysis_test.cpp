#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "analysis/ratio.h"
#include "analysis/stats.h"
#include "test_util.h"

namespace cdbp::analysis {
namespace {

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SummaryOddCountMedian) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
}

TEST(Stats, SummaryEmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(GrowthLaws, EvalValues) {
  EXPECT_DOUBLE_EQ(eval_growth(GrowthLaw::kConstant, 256.0), 1.0);
  EXPECT_DOUBLE_EQ(eval_growth(GrowthLaw::kLogMu, 256.0), 8.0);
  EXPECT_DOUBLE_EQ(eval_growth(GrowthLaw::kSqrtLogMu, 256.0),
                   std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(eval_growth(GrowthLaw::kLogLogMu, 256.0), 3.0);
  EXPECT_DOUBLE_EQ(eval_growth(GrowthLaw::kMu, 256.0), 256.0);
}

TEST(GrowthLaws, Names) {
  EXPECT_EQ(to_string(GrowthLaw::kSqrtLogMu), "sqrt(log mu)");
  EXPECT_EQ(to_string(GrowthLaw::kMu), "mu");
}

TEST(GrowthLaws, PerfectFitRecovered) {
  // y = 3 * sqrt(log mu) + 1 exactly.
  std::vector<Point> pts;
  for (int n = 2; n <= 20; ++n) {
    const double mu = std::exp2(n);
    pts.push_back(Point{mu, 3.0 * std::sqrt(static_cast<double>(n)) + 1.0});
  }
  const Fit fit = fit_growth(GrowthLaw::kSqrtLogMu, pts);
  EXPECT_NEAR(fit.a, 3.0, 1e-9);
  EXPECT_NEAR(fit.b, 1.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(GrowthLaws, RankingPicksTheGeneratingLaw) {
  std::vector<Point> pts;
  for (int n = 2; n <= 24; ++n) {
    const double mu = std::exp2(n);
    pts.push_back(Point{mu, 2.0 * std::log2(static_cast<double>(n)) + 0.5});
  }
  const std::vector<Fit> fits = rank_growth_laws(pts);
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().law, GrowthLaw::kLogLogMu);
}

TEST(GrowthLaws, ConstantLawDegenerateFit) {
  const std::vector<Point> pts = {{4.0, 2.0}, {16.0, 2.0}, {64.0, 2.0}};
  const Fit fit = fit_growth(GrowthLaw::kConstant, pts);
  EXPECT_NEAR(fit.a + fit.b, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(GrowthLaws, TooFewPointsSafe) {
  EXPECT_DOUBLE_EQ(fit_growth(GrowthLaw::kLogMu, {}).r2, 0.0);
  EXPECT_DOUBLE_EQ(fit_growth(GrowthLaw::kLogMu, {{2.0, 1.0}}).r2, 0.0);
}

TEST(Ratio, MeasurementSandwich) {
  const Instance in = testutil::make_instance({
      {0.0, 4.0, 0.6},
      {0.0, 4.0, 0.6},
      {1.0, 3.0, 0.6},
  });
  algos::FirstFit ff;
  const RatioMeasurement m = measure_ratio(in, ff);
  EXPECT_EQ(m.algorithm, "FirstFit");
  EXPECT_GT(m.cost, 0.0);
  EXPECT_LE(m.opt_lower, m.opt_upper + 1e-12);
  EXPECT_GE(m.ratio_vs_lower(), m.ratio_vs_upper());
  EXPECT_GE(m.ratio_vs_lower(), 1.0 - 1e-9);  // ON >= OPT >= LB
  EXPECT_DOUBLE_EQ(m.mu, 2.0);
}

TEST(Ratio, PrecomputedCostPath) {
  const Instance in = testutil::make_instance({{0.0, 2.0, 0.5}});
  const RatioMeasurement m =
      measure_ratio_with_cost(in, "X", 6.0, /*tight_upper=*/false);
  EXPECT_DOUBLE_EQ(m.cost, 6.0);
  EXPECT_DOUBLE_EQ(m.opt_lower, 2.0);
  EXPECT_DOUBLE_EQ(m.ratio_vs_lower(), 3.0);
}

}  // namespace
}  // namespace cdbp::analysis
