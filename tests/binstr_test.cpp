#include "binstr/binstr.h"

#include <random>

#include <gtest/gtest.h>

namespace cdbp::binstr {
namespace {

TEST(Binstr, BinaryStrings) {
  EXPECT_EQ(binary(0), "0");
  EXPECT_EQ(binary(5), "101");
  EXPECT_EQ(binary(5, 6), "000101");
  EXPECT_EQ(binary(255, 8), "11111111");
}

TEST(Binstr, MaxZeroRun) {
  EXPECT_EQ(max_zero_run(0b1111, 4), 0);
  EXPECT_EQ(max_zero_run(0b1011, 4), 1);
  EXPECT_EQ(max_zero_run(0b1001, 4), 2);
  EXPECT_EQ(max_zero_run(0, 7), 7);
  EXPECT_EQ(max_zero_run(0b1001000, 7), 3);
  // Width padding adds leading zeros.
  EXPECT_EQ(max_zero_run(0b101, 8), 5);
}

TEST(Binstr, MaxZeroRunMatchesStringScan) {
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const int width = 1 + static_cast<int>(rng() % 20);
    const std::uint64_t t = rng() & ((1ULL << width) - 1);
    const std::string s = binary(t, width);
    int best = 0, run = 0;
    for (char c : s) {
      run = c == '0' ? run + 1 : 0;
      best = std::max(best, run);
    }
    EXPECT_EQ(max_zero_run(t, width), best) << s;
  }
}

TEST(Binstr, LsbZeroRun) {
  EXPECT_EQ(lsb_zero_run(0b1000, 4), 3);
  EXPECT_EQ(lsb_zero_run(0b1001, 4), 0);
  EXPECT_EQ(lsb_zero_run(0, 4), 4);
  EXPECT_EQ(lsb_zero_run(16, 3), 3);  // run clamped to width
}

TEST(Binstr, PrefixedBit) {
  // b = 1 || binary(t): bit `width` is the prepended 1.
  EXPECT_TRUE(prefixed_bit(0, 4, 4));
  EXPECT_FALSE(prefixed_bit(0, 4, 0));
  EXPECT_TRUE(prefixed_bit(0b0100, 4, 2));
  EXPECT_THROW((void)prefixed_bit(0, 4, 5), std::invalid_argument);
}

TEST(Binstr, ZeroRunAbove) {
  // b_t = 1001000 (the paper's example, t = 0b001000, width 6):
  // the bit of "length 4" (bit 2) has bit 3 == 1 right above -> s = 0,
  // so the item goes to bin b_{s+1}^1 = b_1^1, matching the paper.
  const std::uint64_t t = 0b001000;
  EXPECT_EQ(zero_run_above(t, 6, 2), 0);
  EXPECT_EQ(zero_run_above(t, 6, 3), 2);  // bits 4,5 zero, bit 6 is the 1
  EXPECT_EQ(zero_run_above(t, 6, 5), 0);  // bit 6 is the prepended 1
  EXPECT_EQ(zero_run_above(t, 6, 6), 0);  // MSB itself
}

TEST(Binstr, TotalMaxZeroRunSmallCases) {
  // n = 2: strings 00,01,10,11 -> 2+1+1+0 = 4.
  EXPECT_EQ(total_max_zero_run(2), 4u);
  // n = 3: 3+2+1+1+2+1+1+0 = 11.
  EXPECT_EQ(total_max_zero_run(3), 11u);
}

TEST(Binstr, Corollary510Bound) {
  // sum_t max_0(binary(t)) <= 2 mu log log mu for all n >= 2.
  for (int n = 2; n <= 16; ++n) {
    const double mu = static_cast<double>(1ULL << n);
    const double bound = 2.0 * mu * std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(total_max_zero_run(n)), bound + 1e-9)
        << "n=" << n;
  }
}

TEST(Binstr, Lemma59ExpectationBound) {
  // E[max_0] <= 2 log2 n (exact DP vs the bound).
  for (int n : {2, 4, 8, 16, 32, 63}) {
    const double e = exact_expected_max_zero_run(n);
    EXPECT_LE(e, 2.0 * std::log2(static_cast<double>(n)) + 1e-9) << n;
    EXPECT_GT(e, 0.0);
  }
}

TEST(Binstr, ExactExpectationMatchesExhaustive) {
  for (int n = 1; n <= 12; ++n) {
    const double exhaustive = static_cast<double>(total_max_zero_run(n)) /
                              static_cast<double>(1ULL << n);
    EXPECT_NEAR(exact_expected_max_zero_run(n), exhaustive, 1e-9) << n;
  }
}

TEST(Binstr, MonteCarloAgreesWithExact) {
  std::mt19937_64 rng(7);
  const int n = 20;
  const double mc = mc_expected_max_zero_run(n, 20000, rng);
  const double exact = exact_expected_max_zero_run(n);
  EXPECT_NEAR(mc, exact, 0.15);
}

TEST(Binstr, ExpectationIsMonotoneInN) {
  double prev = 0.0;
  for (int n = 1; n <= 40; ++n) {
    const double e = exact_expected_max_zero_run(n);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Binstr, WidthValidation) {
  EXPECT_THROW((void)max_zero_run(1, 64), std::invalid_argument);
  EXPECT_THROW((void)lsb_zero_run(1, 0), std::invalid_argument);
  EXPECT_THROW((void)total_max_zero_run(27), std::invalid_argument);
  std::mt19937_64 rng(0);
  EXPECT_THROW((void)mc_expected_max_zero_run(4, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp::binstr
