#include "cli/cli.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

namespace cdbp::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return CliRun{code, out.str(), err.str()};
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Cli, HelpAndNoArgs) {
  const CliRun help = cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  const CliRun none = cli({});
  EXPECT_EQ(none.code, 2);
}

TEST(Cli, UnknownCommand) {
  const CliRun r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateRunCompareBoundsPipeline) {
  const std::string path = temp_file("cdbp_cli_test.csv");

  const CliRun gen = cli({"generate", "--kind", "binary", "--n", "4",
                          "--out", path});
  EXPECT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote 31 items"), std::string::npos);

  const CliRun run = cli({"run", "--algo", "cdff", "--in", path,
                          "--validate"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("CDFF"), std::string::npos);
  EXPECT_NE(run.out.find("validation: OK"), std::string::npos);

  const CliRun bounds = cli({"bounds", "--in", path});
  EXPECT_EQ(bounds.code, 0) << bounds.err;
  EXPECT_NE(bounds.out.find("repack witness"), std::string::npos);

  const CliRun compare = cli({"compare", "--in", path});
  EXPECT_EQ(compare.code, 0) << compare.err;
  EXPECT_NE(compare.out.find("[aligned]"), std::string::npos);
  EXPECT_NE(compare.out.find("CDFF"), std::string::npos);
  EXPECT_NE(compare.out.find("HA"), std::string::npos);

  std::remove(path.c_str());
}

TEST(Cli, RunWithGanttAndTimeline) {
  const std::string path = temp_file("cdbp_cli_gantt.csv");
  const std::string timeline = temp_file("cdbp_cli_timeline.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "20", "--out", path})
                .code,
            0);
  const CliRun r = cli({"run", "--algo", "ha", "--in", path, "--gantt",
                        "--timeline", timeline});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("bin"), std::string::npos);
  EXPECT_NE(r.out.find("timeline written"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(timeline));
  std::remove(path.c_str());
  std::remove(timeline.c_str());
}

TEST(Cli, CompareSkipsCdffOnUnalignedInput) {
  const std::string path = temp_file("cdbp_cli_unaligned.csv");
  ASSERT_EQ(cli({"generate", "--kind", "cloud", "--out", path}).code, 0);
  const CliRun r = cli({"compare", "--in", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.find("CDFF"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, StatsReduceExactPipeline) {
  const std::string path = temp_file("cdbp_cli_sre.csv");
  const std::string reduced = temp_file("cdbp_cli_sre_reduced.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "12", "--out", path})
                .code,
            0);

  const CliRun stats = cli({"stats", "--in", path});
  EXPECT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("duration classes"), std::string::npos);

  const CliRun red = cli({"reduce", "--in", path, "--out", reduced});
  EXPECT_EQ(red.code, 0) << red.err;
  EXPECT_NE(red.out.find("span x"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(reduced));

  const CliRun exact = cli({"exact", "--in", path});
  EXPECT_EQ(exact.code, 0) << exact.err;
  EXPECT_NE(exact.out.find("OPT_R"), std::string::npos);
  EXPECT_NE(exact.out.find("OPT_NR"), std::string::npos);

  std::remove(path.c_str());
  std::remove(reduced.c_str());
}

TEST(Cli, ExactReportsInfeasibilityGracefully) {
  const std::string path = temp_file("cdbp_cli_big.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "120", "--out", path})
                .code,
            0);
  const CliRun exact = cli({"exact", "--in", path});
  EXPECT_EQ(exact.code, 0) << exact.err;
  EXPECT_NE(exact.out.find("OPT_NR   : infeasible"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, MergeCommand) {
  const std::string a = temp_file("cdbp_cli_merge_a.csv");
  const std::string b = temp_file("cdbp_cli_merge_b.csv");
  const std::string out = temp_file("cdbp_cli_merge_out.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "3", "--items",
                 "10", "--out", a})
                .code,
            0);
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "3", "--items",
                 "15", "--seed", "2", "--out", b})
                .code,
            0);
  // Superimpose (default).
  const CliRun merged = cli({"merge", "--a", a, "--b", b, "--out", out});
  EXPECT_EQ(merged.code, 0) << merged.err;
  EXPECT_NE(merged.out.find("merged 10 + 15"), std::string::npos);
  EXPECT_NE(merged.out.find("n=25"), std::string::npos);
  // Concatenate with a gap.
  const CliRun cat =
      cli({"merge", "--a", a, "--b", b, "--out", out, "--gap", "8"});
  EXPECT_EQ(cat.code, 0) << cat.err;
  EXPECT_NE(cat.out.find("concatenated"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(out.c_str());
}

TEST(Cli, ClusterCommand) {
  const std::string path = temp_file("cdbp_cli_cluster.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "40", "--out", path})
                .code,
            0);
  const CliRun r =
      cli({"cluster", "--algo", "bf", "--in", path, "--boot", "2.5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("warm window"), std::string::npos);
  EXPECT_NE(r.out.find("total energy"), std::string::npos);
  EXPECT_NE(r.out.find("boot=2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, AdversaryCommand) {
  const CliRun r =
      cli({"adversary", "--algo", "ff", "--n", "6", "--rounds", "16"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("certified ratio"), std::string::npos);
}

TEST(Cli, ErrorPathsReportCleanly) {
  EXPECT_EQ(cli({"run", "--algo", "ha"}).code, 1);           // missing --in
  EXPECT_EQ(cli({"run", "--algo", "nope", "--in", "x"}).code, 1);
  EXPECT_EQ(cli({"bounds", "--in", "/no/such/file.csv"}).code, 1);
  EXPECT_EQ(cli({"generate", "--kind", "weird", "--out", "/tmp/x"}).code, 1);
  EXPECT_EQ(cli({"run", "--algo"}).code, 1);                 // dangling flag
  EXPECT_EQ(cli({"run", "positional"}).code, 1);
  const CliRun unknown_flag =
      cli({"adversary", "--algo", "ff", "--n", "4", "--bogus", "1"});
  EXPECT_EQ(unknown_flag.code, 1);
  EXPECT_NE(unknown_flag.err.find("--bogus"), std::string::npos);
}

TEST(Cli, MakeAlgorithmCoversAllNames) {
  for (const std::string& name : algorithm_names()) {
    const AlgorithmPtr algo = make_algorithm(name, 1024.0);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_FALSE(algo->name().empty());
  }
  EXPECT_THROW((void)make_algorithm("nope"), std::invalid_argument);
}

TEST(Cli, GenerateShapesAccepted) {
  for (const std::string shape :
       {"log-uniform", "exponential", "geometric-bursts", "two-phase"}) {
    const std::string path = temp_file("cdbp_cli_shape.csv");
    const CliRun r = cli({"generate", "--kind", "general", "--shape", shape,
                          "--items", "30", "--out", path});
    EXPECT_EQ(r.code, 0) << shape << ": " << r.err;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace cdbp::cli
