#include "cli/cli.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace cdbp::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return CliRun{code, out.str(), err.str()};
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Cli, HelpAndNoArgs) {
  const CliRun help = cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  const CliRun none = cli({});
  EXPECT_EQ(none.code, 2);
}

TEST(Cli, UnknownCommand) {
  const CliRun r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateRunCompareBoundsPipeline) {
  const std::string path = temp_file("cdbp_cli_test.csv");

  const CliRun gen = cli({"generate", "--kind", "binary", "--n", "4",
                          "--out", path});
  EXPECT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote 31 items"), std::string::npos);

  const CliRun run = cli({"run", "--algo", "cdff", "--in", path,
                          "--validate"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("CDFF"), std::string::npos);
  EXPECT_NE(run.out.find("validation: OK"), std::string::npos);

  const CliRun bounds = cli({"bounds", "--in", path});
  EXPECT_EQ(bounds.code, 0) << bounds.err;
  EXPECT_NE(bounds.out.find("repack witness"), std::string::npos);

  const CliRun compare = cli({"compare", "--in", path});
  EXPECT_EQ(compare.code, 0) << compare.err;
  EXPECT_NE(compare.out.find("[aligned]"), std::string::npos);
  EXPECT_NE(compare.out.find("CDFF"), std::string::npos);
  EXPECT_NE(compare.out.find("HA"), std::string::npos);

  std::remove(path.c_str());
}

TEST(Cli, RunWithGanttAndTimeline) {
  const std::string path = temp_file("cdbp_cli_gantt.csv");
  const std::string timeline = temp_file("cdbp_cli_timeline.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "20", "--out", path})
                .code,
            0);
  const CliRun r = cli({"run", "--algo", "ha", "--in", path, "--gantt",
                        "--timeline", timeline});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("bin"), std::string::npos);
  EXPECT_NE(r.out.find("timeline written"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(timeline));
  std::remove(path.c_str());
  std::remove(timeline.c_str());
}

TEST(Cli, CompareSkipsCdffOnUnalignedInput) {
  const std::string path = temp_file("cdbp_cli_unaligned.csv");
  ASSERT_EQ(cli({"generate", "--kind", "cloud", "--out", path}).code, 0);
  const CliRun r = cli({"compare", "--in", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.find("CDFF"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, StatsReduceExactPipeline) {
  const std::string path = temp_file("cdbp_cli_sre.csv");
  const std::string reduced = temp_file("cdbp_cli_sre_reduced.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "12", "--out", path})
                .code,
            0);

  const CliRun stats = cli({"stats", "--in", path});
  EXPECT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("duration classes"), std::string::npos);

  const CliRun red = cli({"reduce", "--in", path, "--out", reduced});
  EXPECT_EQ(red.code, 0) << red.err;
  EXPECT_NE(red.out.find("span x"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(reduced));

  const CliRun exact = cli({"exact", "--in", path});
  EXPECT_EQ(exact.code, 0) << exact.err;
  EXPECT_NE(exact.out.find("OPT_R"), std::string::npos);
  EXPECT_NE(exact.out.find("OPT_NR"), std::string::npos);

  std::remove(path.c_str());
  std::remove(reduced.c_str());
}

TEST(Cli, ExactReportsInfeasibilityGracefully) {
  const std::string path = temp_file("cdbp_cli_big.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "120", "--out", path})
                .code,
            0);
  const CliRun exact = cli({"exact", "--in", path});
  EXPECT_EQ(exact.code, 0) << exact.err;
  EXPECT_NE(exact.out.find("OPT_NR   : infeasible"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, MergeCommand) {
  const std::string a = temp_file("cdbp_cli_merge_a.csv");
  const std::string b = temp_file("cdbp_cli_merge_b.csv");
  const std::string out = temp_file("cdbp_cli_merge_out.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "3", "--items",
                 "10", "--out", a})
                .code,
            0);
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "3", "--items",
                 "15", "--seed", "2", "--out", b})
                .code,
            0);
  // Superimpose (default).
  const CliRun merged = cli({"merge", "--a", a, "--b", b, "--out", out});
  EXPECT_EQ(merged.code, 0) << merged.err;
  EXPECT_NE(merged.out.find("merged 10 + 15"), std::string::npos);
  EXPECT_NE(merged.out.find("n=25"), std::string::npos);
  // Concatenate with a gap.
  const CliRun cat =
      cli({"merge", "--a", a, "--b", b, "--out", out, "--gap", "8"});
  EXPECT_EQ(cat.code, 0) << cat.err;
  EXPECT_NE(cat.out.find("concatenated"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(out.c_str());
}

TEST(Cli, ClusterCommand) {
  const std::string path = temp_file("cdbp_cli_cluster.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "4", "--items",
                 "40", "--out", path})
                .code,
            0);
  const CliRun r =
      cli({"cluster", "--algo", "bf", "--in", path, "--boot", "2.5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("warm window"), std::string::npos);
  EXPECT_NE(r.out.find("total energy"), std::string::npos);
  EXPECT_NE(r.out.find("boot=2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, AdversaryCommand) {
  const CliRun r =
      cli({"adversary", "--algo", "ff", "--n", "6", "--rounds", "16"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("certified ratio"), std::string::npos);
}

TEST(Cli, ErrorPathsReportCleanly) {
  EXPECT_EQ(cli({"run", "--algo", "ha"}).code, 1);           // missing --in
  EXPECT_EQ(cli({"run", "--algo", "nope", "--in", "x"}).code, 1);
  EXPECT_EQ(cli({"bounds", "--in", "/no/such/file.csv"}).code, 1);
  EXPECT_EQ(cli({"generate", "--kind", "weird", "--out", "/tmp/x"}).code, 1);
  EXPECT_EQ(cli({"run", "--algo"}).code, 1);                 // dangling flag
  EXPECT_EQ(cli({"run", "positional"}).code, 1);
  const CliRun unknown_flag =
      cli({"adversary", "--algo", "ff", "--n", "4", "--bogus", "1"});
  EXPECT_EQ(unknown_flag.code, 1);
  EXPECT_NE(unknown_flag.err.find("--bogus"), std::string::npos);
}

TEST(Cli, MakeAlgorithmCoversAllNames) {
  for (const std::string& name : algorithm_names()) {
    const AlgorithmPtr algo = make_algorithm(name, 1024.0);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_FALSE(algo->name().empty());
  }
  EXPECT_THROW((void)make_algorithm("nope"), std::invalid_argument);
}

#ifndef CDBP_OBS_OFF

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Cheap structural JSON checks (no JSON parser in the tree): brace balance
// outside string literals, and known substrings. Event names/categories are
// literals without braces, so this is robust for our own output.
bool braces_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Cli, TraceCommandWritesChromeTraceOfHybridOnSigmaMu) {
  const std::string inst = temp_file("cdbp_cli_trace_inst.csv");
  const std::string trace_path = temp_file("cdbp_cli_trace.json");
  const std::string metrics = temp_file("cdbp_cli_trace_metrics.txt");
  // sigma_mu: the paper's binary instance (2^n - 1 items, mu = 2^n).
  ASSERT_EQ(cli({"generate", "--kind", "binary", "--n", "4", "--out", inst})
                .code,
            0);
  const CliRun r = cli({"trace", "--algo", "ha", "--in", inst, "--out",
                        trace_path, "--metrics-out", metrics});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace (chrome) written"), std::string::npos);

  const std::string body = read_file(trace_path);
  EXPECT_EQ(body.rfind("{\"traceEvents\":[", 0), 0u) << body.substr(0, 80);
  EXPECT_NE(body.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_TRUE(braces_balanced(body));
  // One 'X' span for the whole run, plus per-arrival instants from both the
  // simulator and the Hybrid placement paths.
  EXPECT_NE(body.find("\"name\":\"sim.run\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"hybrid.place\""), std::string::npos);
  EXPECT_NE(body.find("\"path\":"), std::string::npos);

  const std::string m = read_file(metrics);
  EXPECT_NE(m.find("counter sim.arrivals 31"), std::string::npos) << m;
  EXPECT_NE(m.find("counter algo.placements 31"), std::string::npos);

  std::remove(inst.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics.c_str());
}

TEST(Cli, TraceCommandWritesJsonl) {
  const std::string inst = temp_file("cdbp_cli_trace_inst2.csv");
  const std::string trace_path = temp_file("cdbp_cli_trace.jsonl");
  ASSERT_EQ(cli({"generate", "--kind", "binary", "--n", "3", "--out", inst})
                .code,
            0);
  // Format inferred from the .jsonl extension.
  const CliRun r =
      cli({"trace", "--algo", "ha", "--in", inst, "--out", trace_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace (jsonl) written"), std::string::npos);

  std::ifstream in(trace_path);
  std::string line;
  std::size_t events = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_TRUE(braces_balanced(line)) << line;
    EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
    ++events;
  }
  // 7 items -> at least one event per arrival plus the run span.
  EXPECT_GE(events, 8u);

  std::remove(inst.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, RunAcceptsTraceAndMetricsFlags) {
  const std::string inst = temp_file("cdbp_cli_run_trace_inst.csv");
  const std::string trace_path = temp_file("cdbp_cli_run_trace.json");
  const std::string metrics = temp_file("cdbp_cli_run_metrics.csv");
  ASSERT_EQ(cli({"generate", "--kind", "binary", "--n", "3", "--out", inst})
                .code,
            0);
  const CliRun r = cli({"run", "--algo", "ff", "--in", inst, "--trace-out",
                        trace_path, "--metrics-out", metrics});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace written"), std::string::npos);
  EXPECT_NE(r.out.find("metrics written"), std::string::npos);
  EXPECT_TRUE(braces_balanced(read_file(trace_path)));
  const std::string m = read_file(metrics);
  EXPECT_EQ(m.rfind("kind,name,", 0), 0u) << m;  // CSV by extension
  EXPECT_NE(m.find("counter,sim.arrivals,"), std::string::npos);

  // Unknown trace format is a clean CLI error.
  const CliRun bad = cli({"run", "--algo", "ff", "--in", inst, "--trace-out",
                          trace_path, "--trace-format", "xml"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("trace format"), std::string::npos);

  std::remove(inst.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics.c_str());
}

#endif  // CDBP_OBS_OFF

std::string line_with(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.find(needle) != std::string::npos) return line;
  return "";
}

TEST(Cli, ServeRecoverWalDumpPipeline) {
  namespace fs = std::filesystem;
  const std::string stream = temp_file("cdbp_cli_stream.csv");
  const fs::path wal_dir = fs::temp_directory_path() / "cdbp_cli_serve_wal";
  fs::remove_all(wal_dir);

  const CliRun gen = cli({"gen-stream", "--out", stream, "--items", "150",
                          "--tenants", "6", "--seed", "3"});
  EXPECT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("requests (6 tenants)"), std::string::npos);

  const std::string placements = temp_file("cdbp_cli_placements.csv");
  const CliRun serve =
      cli({"serve", "--algo", "bf", "--in", stream, "--wal-dir",
           wal_dir.string(), "--shards", "2", "--fsync", "none",
           "--checkpoint-every", "16", "--out", placements});
  EXPECT_EQ(serve.code, 0) << serve.err;
  EXPECT_NE(serve.out.find("shard 0: applied="), std::string::npos);
  EXPECT_NE(serve.out.find("served 150 requests on 2 shard(s)"),
            std::string::npos);
#ifndef CDBP_OBS_OFF
  // Per-shard end-to-end latency percentiles ride along on every serve run.
  EXPECT_NE(serve.out.find("ack-latency-us: p50="), std::string::npos);
#else
  EXPECT_EQ(serve.out.find("ack-latency-us"), std::string::npos);
#endif
  const std::string served_cost = line_with(serve.out, "total cost=");
  ASSERT_FALSE(served_cost.empty());
  EXPECT_TRUE(fs::exists(placements));

  // Recovery rebuilds the exact same state: the canonical cost line must
  // match the live run byte for byte.
  const CliRun recover = cli({"recover", "--algo", "bf", "--wal-dir",
                              wal_dir.string(), "--shards", "2"});
  EXPECT_EQ(recover.code, 0) << recover.err;
  EXPECT_EQ(line_with(recover.out, "total cost="), served_cost);
  EXPECT_NE(recover.out.find("digest="), std::string::npos);
  EXPECT_NE(recover.err.find("checkpoint@"), std::string::npos);

  const CliRun dump =
      cli({"wal-dump", "--wal", (wal_dir / "shard-0.wal").string()});
  EXPECT_EQ(dump.code, 0) << dump.err;
  EXPECT_EQ(dump.out.rfind("seq,stream_index,arrival,departure,size,bin", 0),
            0u);
  EXPECT_NE(dump.out.find("# records="), std::string::npos);
  EXPECT_EQ(dump.out.find("# torn tail"), std::string::npos);
  // Frame-type census: the stream is multi-tenant, so this shard holds
  // tenant-offer (type2) frames, and a clean WAL skips nothing.
  EXPECT_NE(dump.out.find("# frames type2="), std::string::npos);
  EXPECT_NE(dump.out.find("skipped_unknown=0"), std::string::npos);

  EXPECT_EQ(cli({"wal-dump", "--wal", "/no/such.wal"}).code, 1);

  std::remove(stream.c_str());
  std::remove(placements.c_str());
  fs::remove_all(wal_dir);
}

TEST(Cli, ServeStatsExporterFlags) {
  namespace fs = std::filesystem;
  const std::string stream = temp_file("cdbp_cli_stats_stream.csv");
  const fs::path wal_dir = fs::temp_directory_path() / "cdbp_cli_stats_wal";
  const std::string base = temp_file("cdbp_cli_stats");
  fs::remove_all(wal_dir);
  ASSERT_EQ(cli({"gen-stream", "--out", stream, "--items", "80", "--tenants",
                 "4", "--seed", "9"})
                .code,
            0);

  const CliRun serve =
      cli({"serve", "--algo", "bf", "--in", stream, "--wal-dir",
           wal_dir.string(), "--shards", "1", "--fsync", "none",
           "--stats-out", base, "--stats-interval", "0"});
#ifdef CDBP_OBS_OFF
  // The flag is a clean CLI error when the build cannot honor it.
  EXPECT_EQ(serve.code, 1);
  EXPECT_NE(serve.err.find("compiled out"), std::string::npos);
#else
  EXPECT_EQ(serve.code, 0) << serve.err;
  EXPECT_NE(serve.out.find("stats written to " + base + ".prom"),
            std::string::npos);
  const std::string prom = read_file(base + ".prom");
  EXPECT_NE(prom.find("cdbp_serve_ack_us_shard0{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("cdbp_serve_submitted"), std::string::npos);
  const std::string json = read_file(base + ".json");
  EXPECT_EQ(json.rfind("{\"interval_s\":", 0), 0u);
  EXPECT_NE(json.find("\"serve.ack_us.shard0\""), std::string::npos);
  std::remove((base + ".prom").c_str());
  std::remove((base + ".json").c_str());
#endif

  std::remove(stream.c_str());
  fs::remove_all(wal_dir);
}

TEST(Cli, ServeResumeMatchesUninterruptedRun) {
  namespace fs = std::filesystem;
  const std::string stream = temp_file("cdbp_cli_resume_stream.csv");
  const std::string half = temp_file("cdbp_cli_resume_half.csv");
  const fs::path ref_dir = fs::temp_directory_path() / "cdbp_cli_resume_ref";
  const fs::path crash_dir =
      fs::temp_directory_path() / "cdbp_cli_resume_crash";
  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);

  ASSERT_EQ(cli({"gen-stream", "--out", stream, "--items", "120", "--seed",
                 "9"})
                .code,
            0);
  {
    // First half of the stream = header plus the first 60 request lines.
    std::ifstream in(stream);
    std::ofstream out_half(half);
    std::string line;
    for (int i = 0; i <= 60 && std::getline(in, line); ++i)
      out_half << line << "\n";
  }

  const std::vector<std::string> common = {"--algo", "ha", "--shards", "2",
                                           "--fsync", "none"};
  auto serve_args = [&](const std::string& in_path, const fs::path& dir,
                        bool resume) {
    std::vector<std::string> args = {"serve", "--in", in_path, "--wal-dir",
                                     dir.string()};
    args.insert(args.end(), common.begin(), common.end());
    if (resume) args.push_back("--resume");
    return args;
  };

  ASSERT_EQ(cli(serve_args(stream, ref_dir, false)).code, 0);
  ASSERT_EQ(cli(serve_args(half, crash_dir, false)).code, 0);
  // Resume with the FULL stream: already-applied requests are skipped via
  // the stream-index high-water mark, the rest are served normally.
  const CliRun resumed = cli(serve_args(stream, crash_dir, true));
  ASSERT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("skipped=60"), std::string::npos)
      << resumed.out;

  const std::vector<std::string> rec = {"--algo", "ha", "--shards", "2"};
  auto recover_args = [&](const fs::path& dir) {
    std::vector<std::string> args = {"recover", "--wal-dir", dir.string()};
    args.insert(args.end(), rec.begin(), rec.end());
    return args;
  };
  const CliRun ref = cli(recover_args(ref_dir));
  const CliRun crash = cli(recover_args(crash_dir));
  ASSERT_EQ(ref.code, 0) << ref.err;
  ASSERT_EQ(crash.code, 0) << crash.err;
  // The whole canonical stdout — per-shard records, costs, digests — must
  // be byte-identical; this is exactly what the CI crash job diffs.
  EXPECT_EQ(crash.out, ref.out);

  std::remove(stream.c_str());
  std::remove(half.c_str());
  fs::remove_all(ref_dir);
  fs::remove_all(crash_dir);
}

TEST(Cli, PackInstanceRoundTripsThroughBinary) {
  const std::string csv = temp_file("cdbp_cli_pack.csv");
  const std::string packed = temp_file("cdbp_cli_pack.cdbpi");
  const std::string back = temp_file("cdbp_cli_pack_back.csv");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "5", "--items",
                 "80", "--out", csv})
                .code,
            0);

  const CliRun pack = cli({"pack-instance", "--in", csv, "--out", packed});
  EXPECT_EQ(pack.code, 0) << pack.err;
  EXPECT_NE(pack.out.find("packed 80 items"), std::string::npos);

  const CliRun unpack = cli({"pack-instance", "--in", packed, "--out", back});
  EXPECT_EQ(unpack.code, 0) << unpack.err;

  // CSV -> .cdbpi -> CSV is exact: 17-sig-digit CSV and the binary doubles
  // both round-trip, so the final CSV is byte-identical to the original.
  std::ifstream a(csv), b(back);
  const std::string sa((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
  const std::string sb((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);

  // Same-extension conversions are refused.
  EXPECT_EQ(cli({"pack-instance", "--in", csv, "--out", back}).code, 1);

  std::remove(csv.c_str());
  std::remove(packed.c_str());
  std::remove(back.c_str());
}

TEST(Cli, RunStreamMatchesInRamRun) {
  const std::string packed = temp_file("cdbp_cli_stream_run.cdbpi");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "5", "--items",
                 "120", "--out", packed})
                .code,
            0);

  const CliRun streamed = cli({"run", "--algo", "ff", "--in", packed,
                               "--stream", "--storage", "soa"});
  ASSERT_EQ(streamed.code, 0) << streamed.err;
  const CliRun streamed_ref = cli({"run", "--algo", "ff", "--in", packed,
                                   "--stream", "--storage", "reference"});
  ASSERT_EQ(streamed_ref.code, 0) << streamed_ref.err;
  // Backend choice changes nothing observable.
  EXPECT_EQ(streamed.out, streamed_ref.out);
  EXPECT_NE(streamed.out.find("items=120"), std::string::npos)
      << streamed.out;

  // The in-RAM run of the same file reports the same exact cost.
  const CliRun in_ram = cli({"run", "--algo", "ff", "--in", packed});
  ASSERT_EQ(in_ram.code, 0) << in_ram.err;
  const auto cost_of = [](const std::string& s) {
    const std::size_t at = s.find("cost=");
    return s.substr(at, s.find(' ', at) - at);
  };
  EXPECT_EQ(cost_of(streamed.out), cost_of(in_ram.out));

  // Streaming needs a .cdbpi and excludes full-history reports.
  EXPECT_EQ(cli({"run", "--algo", "ff", "--in", "x.csv", "--stream"}).code,
            1);
  EXPECT_EQ(
      cli({"run", "--algo", "ff", "--in", packed, "--stream", "--gantt"})
          .code,
      1);

  std::remove(packed.c_str());
}

TEST(Cli, SimSweepDeterministicAcrossBackendsAndStreaming) {
  const std::string csv = temp_file("cdbp_cli_sweep.csv");
  const std::string packed = temp_file("cdbp_cli_sweep.cdbpi");
  ASSERT_EQ(cli({"generate", "--kind", "general", "--n", "5", "--items",
                 "100", "--out", csv})
                .code,
            0);
  ASSERT_EQ(cli({"pack-instance", "--in", csv, "--out", packed}).code, 0);

  const auto payload = [](const std::string& s) {
    // Drop the '#'-prefixed config/timing lines, as the CI diff does.
    std::istringstream in(s);
    std::string line, kept;
    while (std::getline(in, line))
      if (line.empty() || line[0] != '#') kept += line + "\n";
    return kept;
  };

  const CliRun in_ram = cli({"sim-sweep", "--algos", "ff,bf,wf", "--in", csv,
                             "--threads", "2", "--storage", "reference"});
  ASSERT_EQ(in_ram.code, 0) << in_ram.err;
  const CliRun streamed =
      cli({"sim-sweep", "--algos", "ff,bf,wf", "--in", packed, "--threads",
           "2", "--storage", "soa", "--stream"});
  ASSERT_EQ(streamed.code, 0) << streamed.err;

  EXPECT_EQ(payload(streamed.out), payload(in_ram.out));
  EXPECT_NE(in_ram.out.find("ff: cost="), std::string::npos) << in_ram.out;
  EXPECT_NE(streamed.out.find("# shards=2 storage=soa input=streamed"),
            std::string::npos)
      << streamed.out;

  EXPECT_EQ(cli({"sim-sweep", "--algos", ",", "--in", csv}).code, 1);
  EXPECT_EQ(cli({"sim-sweep", "--algos", "ff", "--in", csv, "--stream"}).code,
            1);

  std::remove(csv.c_str());
  std::remove(packed.c_str());
}

TEST(Cli, GenerateShapesAccepted) {
  for (const std::string shape :
       {"log-uniform", "exponential", "geometric-bursts", "two-phase"}) {
    const std::string path = temp_file("cdbp_cli_shape.csv");
    const CliRun r = cli({"generate", "--kind", "general", "--shape", shape,
                          "--items", "30", "--out", path});
    EXPECT_EQ(r.code, 0) << shape << ": " << r.err;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace cdbp::cli
