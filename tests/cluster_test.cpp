#include "cluster/cluster.h"

#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "algos/classify.h"
#include "core/simulator.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp::cluster {
namespace {

using testutil::make_instance;

RunResult run_ff(const Instance& in) {
  algos::FirstFit ff;
  return Simulator{}.run(in, ff);
}

TEST(Cluster, NoWarmWindowMeansOneBootPerBin) {
  // Two disjoint busy periods separated by a gap > 0: without a warm
  // window the second bin needs a fresh boot.
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {5.0, 6.0, 0.5}});
  const RunResult r = run_ff(in);
  ASSERT_EQ(r.bins_opened, 2u);
  const ClusterReport rep = evaluate_cluster(r, ClusterModel{});
  EXPECT_EQ(rep.servers_booted, 2u);
  EXPECT_EQ(rep.reuses, 0u);
  EXPECT_DOUBLE_EQ(rep.active_time, 2.0);
  EXPECT_DOUBLE_EQ(rep.idle_time, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_energy, 2.0 * 1.0 + 2.0 * 5.0);
}

TEST(Cluster, WarmWindowBridgesTheGap) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {5.0, 6.0, 0.5}});
  const RunResult r = run_ff(in);
  ClusterModel model;
  model.warm_window = 10.0;
  const ClusterReport rep = evaluate_cluster(r, model);
  EXPECT_EQ(rep.servers_booted, 1u);
  EXPECT_EQ(rep.reuses, 1u);
  EXPECT_DOUBLE_EQ(rep.idle_time, 4.0);
  EXPECT_DOUBLE_EQ(rep.total_energy, 2.0 * 1.0 + 4.0 * 0.4 + 1.0 * 5.0);
}

TEST(Cluster, WindowTooShortDoesNotBridge) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {5.0, 6.0, 0.5}});
  const RunResult r = run_ff(in);
  ClusterModel model;
  model.warm_window = 3.9;
  const ClusterReport rep = evaluate_cluster(r, model);
  EXPECT_EQ(rep.servers_booted, 2u);
}

TEST(Cluster, ZeroWindowAllowsExactChaining) {
  // Bin 0 closes at exactly t=1, bin 1 opens at t=1.
  const Instance in = make_instance({{0.0, 1.0, 0.9}, {1.0, 2.0, 0.9}});
  const RunResult r = run_ff(in);
  ASSERT_EQ(r.bins_opened, 2u);
  const ClusterReport rep = evaluate_cluster(r, ClusterModel{});
  EXPECT_EQ(rep.servers_booted, 1u);
  EXPECT_EQ(rep.reuses, 1u);
  EXPECT_DOUBLE_EQ(rep.idle_time, 0.0);
}

TEST(Cluster, MostRecentlyFreedReused) {
  // Two servers free at t=1 and t=3; the bin opening at t=4 should reuse
  // the t=3 one (1 unit idle, not 3).
  const Instance in = make_instance({
      {0.0, 1.0, 0.9},
      {0.0, 3.0, 0.9},
      {4.0, 5.0, 0.9},
  });
  const RunResult r = run_ff(in);
  ASSERT_EQ(r.bins_opened, 3u);
  ClusterModel model;
  model.warm_window = 10.0;
  const ClusterReport rep = evaluate_cluster(r, model);
  EXPECT_EQ(rep.servers_booted, 2u);
  EXPECT_DOUBLE_EQ(rep.idle_time, 1.0);
}

TEST(Cluster, InvariantsOnRandomRuns) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 120;
    cfg.log2_mu = 6;
    cfg.horizon = 64.0;
    const Instance in = workloads::make_general_random(cfg, rng);
    for (double window : {0.0, 2.0, 100.0}) {
      ClusterModel model;
      model.warm_window = window;
      const RunResult r = run_ff(in);
      const ClusterReport rep = evaluate_cluster(r, model);
      EXPECT_EQ(rep.logical_bins, r.bins_opened);
      EXPECT_EQ(rep.servers_booted + rep.reuses, r.bins_opened);
      EXPECT_NEAR(rep.active_time, r.cost, 1e-9);
      EXPECT_GE(rep.total_energy, rep.active_energy);
    }
  }
}

TEST(Cluster, LargerWindowNeverBootsMore) {
  std::mt19937_64 rng(9);
  workloads::GeneralConfig cfg;
  cfg.target_items = 150;
  cfg.log2_mu = 5;
  cfg.horizon = 128.0;
  const Instance in = workloads::make_general_random(cfg, rng);
  const RunResult r = run_ff(in);
  std::size_t prev = r.bins_opened + 1;
  for (double window : {0.0, 1.0, 4.0, 16.0, 1e6}) {
    ClusterModel model;
    model.warm_window = window;
    const std::size_t boots = evaluate_cluster(r, model).servers_booted;
    EXPECT_LE(boots, prev);
    prev = boots;
  }
}

TEST(Cluster, ChurnyAlgorithmsPayMoreBootEnergy) {
  // Classify opens a bin per duration class; under boot costs its churn
  // shows up directly in the energy bill.
  std::mt19937_64 rng(4);
  workloads::GeneralConfig cfg;
  cfg.target_items = 200;
  cfg.log2_mu = 8;
  cfg.horizon = 64.0;
  const Instance in = workloads::make_general_random(cfg, rng);
  algos::FirstFit ff;
  algos::ClassifyByDuration cbd(2.0);
  const RunResult rf = Simulator{}.run(in, ff);
  const RunResult rc = Simulator{}.run(in, cbd);
  const ClusterReport ef = evaluate_cluster(rf, ClusterModel{});
  const ClusterReport ec = evaluate_cluster(rc, ClusterModel{});
  EXPECT_GE(ec.servers_booted, ef.servers_booted);
}

TEST(Cluster, RejectsRunWithoutBinRecords) {
  // keep_history = false drops the BinRecords evaluate_cluster consumes;
  // costing such a run must fail loudly, not report an empty fleet.
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {5.0, 6.0, 0.5}});
  algos::FirstFit ff;
  SimulatorOptions opts;
  opts.keep_history = false;
  const RunResult r = Simulator{opts}.run(in, ff);
  ASSERT_EQ(r.bins_opened, 2u);
  ASSERT_TRUE(r.bins.empty());
  try {
    (void)evaluate_cluster(r, ClusterModel{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("keep_history"), std::string::npos);
  }
  // An empty run (nothing offered, nothing opened) stays valid.
  const ClusterReport rep = evaluate_cluster(RunResult{}, ClusterModel{});
  EXPECT_EQ(rep.servers_booted, 0u);
}

TEST(Cluster, RejectsNegativeParameters) {
  const RunResult r;
  ClusterModel model;
  model.warm_window = -1.0;
  EXPECT_THROW((void)evaluate_cluster(r, model), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp::cluster
