#include "core/bin_index.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(MaxLoadAdmitting, MatchesFitsInBinBoundaryExactly) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unit(1e-6, 1.0);
  for (int k = 0; k < 2000; ++k) {
    const Load size = unit(rng);
    const Load bound = max_load_admitting(size);
    EXPECT_TRUE(fits_in_bin(bound, size));
    EXPECT_FALSE(fits_in_bin(
        std::nextafter(bound, std::numeric_limits<double>::infinity()),
        size));
  }
  // Degenerate sizes: tiny and full.
  for (const Load size : {1e-300, 1e-18, 1.0}) {
    const Load bound = max_load_admitting(size);
    EXPECT_TRUE(fits_in_bin(bound, size));
    EXPECT_FALSE(fits_in_bin(
        std::nextafter(bound, std::numeric_limits<double>::infinity()),
        size));
  }
}

TEST(BinCapacityIndex, EmptyIndexSelectsNothing) {
  BinCapacityIndex idx;
  EXPECT_EQ(idx.first_fit(0.5), kNoBin);
  EXPECT_EQ(idx.best_fit(0.5), kNoBin);
  EXPECT_EQ(idx.worst_fit(0.5), kNoBin);
  EXPECT_EQ(idx.newest_open(), kNoBin);
  EXPECT_EQ(idx.open_count(), 0u);
}

TEST(BinCapacityIndex, FirstFitIsEarliestOpened) {
  BinCapacityIndex idx;
  const auto s0 = idx.add_bin(10);
  const auto s1 = idx.add_bin(11);
  idx.add_bin(12);
  idx.set_load(s0, 0.9);
  idx.set_load(s1, 0.5);
  // 0.2 fits bins 11 and 12; earliest opened wins.
  EXPECT_EQ(idx.first_fit(0.2), 11);
  // 0.05 also fits bin 10.
  EXPECT_EQ(idx.first_fit(0.05), 10);
  EXPECT_EQ(idx.first_fit(0.9), 12);
}

TEST(BinCapacityIndex, BestFitPrefersFullestThenEarliest) {
  BinCapacityIndex idx;
  const auto s0 = idx.add_bin(0);
  const auto s1 = idx.add_bin(1);
  const auto s2 = idx.add_bin(2);
  idx.set_load(s0, 0.4);
  idx.set_load(s1, 0.7);
  idx.set_load(s2, 0.7);
  EXPECT_EQ(idx.best_fit(0.2), 1);  // 0.7 beats 0.4; tie -> earliest id
  EXPECT_EQ(idx.best_fit(0.5), 0);  // only 0.4 admits it
  EXPECT_EQ(idx.best_fit(0.95), kNoBin);
}

TEST(BinCapacityIndex, WorstFitPrefersEmptiestThenEarliest) {
  BinCapacityIndex idx;
  const auto s0 = idx.add_bin(0);
  const auto s1 = idx.add_bin(1);
  const auto s2 = idx.add_bin(2);
  idx.set_load(s0, 0.4);
  idx.set_load(s1, 0.2);
  idx.set_load(s2, 0.2);
  EXPECT_EQ(idx.worst_fit(0.3), 1);  // min load; tie -> earliest id
  // If the min-load bin cannot take it, nothing can.
  EXPECT_EQ(idx.worst_fit(0.9), kNoBin);
}

TEST(BinCapacityIndex, ClosedBinsAreNeverSelected) {
  BinCapacityIndex idx;
  const auto s0 = idx.add_bin(0);
  idx.add_bin(1);
  idx.set_load(s0, 0.1);
  idx.close(s0);
  EXPECT_EQ(idx.first_fit(0.1), 1);
  EXPECT_EQ(idx.best_fit(0.1), 1);
  EXPECT_EQ(idx.worst_fit(0.1), 1);
  EXPECT_EQ(idx.open_count(), 1u);
  EXPECT_EQ(idx.open_bins(), std::vector<BinId>{1});
}

TEST(BinCapacityIndex, NewestOpenSkipsClosedTail) {
  BinCapacityIndex idx;
  idx.add_bin(0);
  idx.add_bin(1);
  const auto s2 = idx.add_bin(2);
  EXPECT_EQ(idx.newest_open(), 2);
  idx.close(s2);
  EXPECT_EQ(idx.newest_open(), 1);
}

// Randomized cross-check against a straight linear scan, through a long
// open/load/close churn that also exercises tree growth.
TEST(BinCapacityIndex, AgreesWithLinearScanUnderChurn) {
  BinCapacityIndex idx;
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  struct Slot {
    BinId bin;
    std::size_t slot;
    Load load = 0.0;
    bool open = true;
  };
  std::vector<Slot> shadow;

  const auto linear_first = [&](Load size) {
    for (const Slot& s : shadow)
      if (s.open && fits_in_bin(s.load, size)) return s.bin;
    return kNoBin;
  };
  const auto linear_best = [&](Load size) {
    BinId chosen = kNoBin;
    Load best = -1.0;
    for (const Slot& s : shadow)
      if (s.open && fits_in_bin(s.load, size) && s.load > best) {
        best = s.load;
        chosen = s.bin;
      }
    return chosen;
  };
  const auto linear_worst = [&](Load size) {
    BinId chosen = kNoBin;
    Load best = 2.0;
    for (const Slot& s : shadow)
      if (s.open && fits_in_bin(s.load, size) && s.load < best) {
        best = s.load;
        chosen = s.bin;
      }
    return chosen;
  };

  BinId next_bin = 0;
  for (int step = 0; step < 5000; ++step) {
    const double r = unit(rng);
    if (r < 0.3 || shadow.empty()) {
      Slot s;
      s.bin = next_bin++;
      s.slot = idx.add_bin(s.bin);
      shadow.push_back(s);
    } else if (r < 0.8) {
      Slot& s = shadow[static_cast<std::size_t>(unit(rng) *
                                                static_cast<double>(
                                                    shadow.size()))];
      if (s.open) {
        s.load = unit(rng);
        idx.set_load(s.slot, s.load);
      }
    } else {
      Slot& s = shadow[static_cast<std::size_t>(unit(rng) *
                                                static_cast<double>(
                                                    shadow.size()))];
      if (s.open) {
        s.open = false;
        idx.close(s.slot);
      }
    }
    const Load size = unit(rng);
    ASSERT_EQ(idx.first_fit(size), linear_first(size)) << "step " << step;
    ASSERT_EQ(idx.best_fit(size), linear_best(size)) << "step " << step;
    ASSERT_EQ(idx.worst_fit(size), linear_worst(size)) << "step " << step;
  }
}

}  // namespace
}  // namespace cdbp
