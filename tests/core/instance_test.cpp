#include "core/instance.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Instance, FinalizeSortsByArrivalStable) {
  Instance in;
  in.add(5.0, 6.0, 0.1);
  in.add(1.0, 2.0, 0.2);
  in.add(1.0, 3.0, 0.3);  // same arrival: must stay after the 0.2 item
  in.finalize();
  ASSERT_EQ(in.size(), 3u);
  EXPECT_DOUBLE_EQ(in[0].size, 0.2);
  EXPECT_DOUBLE_EQ(in[1].size, 0.3);
  EXPECT_DOUBLE_EQ(in[2].size, 0.1);
  EXPECT_EQ(in[0].id, 0);
  EXPECT_EQ(in[1].id, 1);
  EXPECT_EQ(in[2].id, 2);
}

TEST(Instance, ValidationRejectsMalformedItems) {
  {
    Instance in;
    in.add(0.0, 1.0, 0.0);  // zero size
    EXPECT_THROW(in.finalize(), std::invalid_argument);
  }
  {
    Instance in;
    in.add(0.0, 1.0, 1.5);  // oversize
    EXPECT_THROW(in.finalize(), std::invalid_argument);
  }
  {
    Instance in;
    in.add(2.0, 2.0, 0.5);  // empty interval
    EXPECT_THROW(in.finalize(), std::invalid_argument);
  }
}

TEST(Instance, PaperQuantitiesOnKnownInput) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.5},   // length 4
      {2.0, 3.0, 0.25},  // length 1
      {6.0, 8.0, 1.0},   // length 2, disjoint block
  });
  EXPECT_DOUBLE_EQ(in.mu(), 4.0);
  EXPECT_DOUBLE_EQ(in.min_length(), 1.0);
  EXPECT_DOUBLE_EQ(in.max_length(), 4.0);
  EXPECT_DOUBLE_EQ(in.total_demand(), 0.5 * 4 + 0.25 * 1 + 1.0 * 2);
  EXPECT_DOUBLE_EQ(in.span(), 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(in.horizon_start(), 0.0);
  EXPECT_DOUBLE_EQ(in.horizon_end(), 8.0);
  EXPECT_EQ(in.max_concurrency(), 2u);
  EXPECT_FALSE(in.is_contiguous());
  EXPECT_TRUE(in.has_integer_times());
}

TEST(Instance, LoadProfileMatchesDemandIntegral) {
  const Instance in = make_instance({
      {0.0, 10.0, 0.3},
      {5.0, 9.0, 0.6},
      {1.0, 2.0, 0.9},
  });
  EXPECT_NEAR(in.load_profile().integral(), in.total_demand(), 1e-12);
  EXPECT_NEAR(in.load_profile().support_measure(), in.span(), 1e-12);
}

TEST(Instance, EmptyInstanceQuantities) {
  const Instance in;
  EXPECT_DOUBLE_EQ(in.mu(), 1.0);
  EXPECT_DOUBLE_EQ(in.span(), 0.0);
  EXPECT_DOUBLE_EQ(in.total_demand(), 0.0);
  EXPECT_EQ(in.max_concurrency(), 0u);
  EXPECT_TRUE(in.is_contiguous());
  EXPECT_TRUE(in.is_aligned());
}

TEST(Instance, AlignedPredicate) {
  // Length-4 item (bucket 2) at t=8: aligned. At t=6: not aligned.
  EXPECT_TRUE(make_instance({{8.0, 12.0, 0.5}}).is_aligned());
  EXPECT_FALSE(make_instance({{6.0, 10.0, 0.5}}).is_aligned());
  // Length-1 items at any integer: aligned.
  EXPECT_TRUE(make_instance({{3.0, 4.0, 0.5}}).is_aligned());
  EXPECT_FALSE(make_instance({{2.5, 3.5, 0.5}}).is_aligned());
}

TEST(Instance, ContiguityDetectsTouchingIntervals) {
  EXPECT_TRUE(
      make_instance({{0.0, 2.0, 0.1}, {2.0, 4.0, 0.1}}).is_contiguous());
  EXPECT_FALSE(
      make_instance({{0.0, 2.0, 0.1}, {2.5, 4.0, 0.1}}).is_contiguous());
}

TEST(Instance, MaxConcurrencyCountsDeparturesBeforeArrivals) {
  // One departs exactly when the next arrives: concurrency stays 1.
  const Instance in =
      make_instance({{0.0, 1.0, 0.5}, {1.0, 2.0, 0.5}, {2.0, 3.0, 0.5}});
  EXPECT_EQ(in.max_concurrency(), 1u);
}

TEST(AlignedBucket, Buckets) {
  EXPECT_EQ(aligned_bucket(1.0), 0);
  EXPECT_EQ(aligned_bucket(0.75), 0);
  EXPECT_EQ(aligned_bucket(2.0), 1);
  EXPECT_EQ(aligned_bucket(3.0), 2);
  EXPECT_EQ(aligned_bucket(4.0), 2);
  EXPECT_THROW((void)aligned_bucket(0.0), std::invalid_argument);
}

TEST(Instance, SummaryMentionsKeyNumbers) {
  const Instance in = make_instance({{0.0, 8.0, 0.5}, {0.0, 1.0, 0.5}});
  const std::string s = in.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mu=8"), std::string::npos);
}

}  // namespace
}  // namespace cdbp
