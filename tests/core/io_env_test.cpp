// FaultInjectingEnv model tests: the deterministic fault scheduler, the
// bounded transient-retry helpers, and the pessimal power-loss durability
// image (file data to last fsync, entries to last parent-dir fsync, torn
// renames, resurrected unlinks). The chaos matrix (fault_matrix_test.cpp)
// builds on every property verified here.
#include "core/io_env.h"

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cdbp::io {
namespace {

namespace fs = std::filesystem;

class IoEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_io_env_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// Tight policy for tests that exercise retry exhaustion: no visible sleep.
RetryPolicy fast_retry() {
  RetryPolicy rp;
  rp.max_transient_retries = 4;
  rp.backoff_initial_us = 1;
  rp.backoff_max_us = 1;
  return rp;
}

/// Creates `p` through `env` with `content` fully durable (data fsynced,
/// entry dir-fsynced) — the baseline most power-loss tests mutate from.
void write_durable(Env& env, const std::string& p, const std::string& content) {
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, content.data(), content.size(), p);
  sync_file(*f, p);
  int err = 0;
  ASSERT_EQ(f->close(err), 0);
  sync_parent_dir(env, p);
}

std::string read_or_die(Env& env, const std::string& p) {
  std::string out;
  EXPECT_TRUE(read_file(env, p, out)) << p;
  return out;
}

TEST_F(IoEnvTest, PosixRoundTrip) {
  Env& env = Env::posix();
  const std::string p = path("round.bin");
  write_durable(env, p, "hello io");
  EXPECT_TRUE(env.exists(p));
  EXPECT_EQ(env.file_size(p), 8);
  EXPECT_EQ(read_or_die(env, p), "hello io");

  const std::string q = path("renamed.bin");
  int err = 0;
  ASSERT_EQ(env.rename(p, q, err), 0);
  EXPECT_FALSE(env.exists(p));
  EXPECT_EQ(read_or_die(env, q), "hello io");

  const std::vector<std::string> names = env.list_dir(dir_.string());
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "renamed.bin");

  ASSERT_EQ(env.unlink(q, err), 0);
  EXPECT_FALSE(env.exists(q));
  std::string out;
  EXPECT_FALSE(read_file(env, q, out));  // ENOENT -> false, not a throw
}

TEST_F(IoEnvTest, PosixMissingFileErrors) {
  Env& env = Env::posix();
  int err = 0;
  EXPECT_EQ(env.open(path("nope"), OpenMode::kRead, err), nullptr);
  EXPECT_EQ(err, ENOENT);
  EXPECT_EQ(env.file_size(path("nope")), -1);
  EXPECT_EQ(env.unlink(path("nope"), err), -1);
  EXPECT_EQ(err, ENOENT);
  EXPECT_THROW((void)open_file(env, path("nope"), OpenMode::kRead),
               std::runtime_error);
}

TEST_F(IoEnvTest, ParentDirOfPath) {
  EXPECT_EQ(parent_dir("/a/b/c.wal"), "/a/b");
  EXPECT_EQ(parent_dir("c.wal"), ".");
  EXPECT_EQ(parent_dir("/top"), "/");
}

TEST_F(IoEnvTest, ShortWritesAreLoopedOver) {
  FaultInjectingEnv env(Env::posix());
  // Every write from the 0th on is cut to at most 3 bytes: write_all must
  // keep looping until the frame is complete, without error.
  FaultRule rule;
  rule.ops = kOpWrite;
  rule.kind = FaultKind::kShortWrite;
  rule.param = 3;
  rule.repeat = true;
  env.add_rule(rule);
  const std::string p = path("short.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  const std::string payload = "twelve bytes";
  write_all(*f, payload.data(), payload.size(), p);
  int err = 0;
  ASSERT_EQ(f->close(err), 0);
  EXPECT_EQ(read_or_die(env, p), payload);
  EXPECT_GE(env.faults_injected(), 4u);  // ceil(12 / 3) short writes
}

TEST_F(IoEnvTest, EintrStormIsTransparentlyRetried) {
  FaultInjectingEnv env(Env::posix());
  FaultRule rule;
  rule.ops = kOpWrite | kOpFsync;
  rule.kind = FaultKind::kEintr;
  rule.after = 1;
  rule.param = 3;  // ops 1,2,3 fail EINTR, then normal service resumes
  env.add_rule(rule);
  const std::string p = path("eintr.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, "abc", 3, p);   // write op 0: clean
  write_all(*f, "def", 3, p);   // absorbs the storm
  sync_file(*f, p);             // and any tail of it
  int err = 0;
  ASSERT_EQ(f->close(err), 0);
  EXPECT_EQ(read_or_die(env, p), "abcdef");
  EXPECT_EQ(env.faults_injected(), 3u);
}

TEST_F(IoEnvTest, UnboundedEintrExhaustsTheRetryBudget) {
  FaultInjectingEnv env(Env::posix());
  FaultRule rule;
  rule.ops = kOpWrite;
  rule.kind = FaultKind::kEintr;
  rule.repeat = true;  // never stops: a genuinely wedged fd
  env.add_rule(rule);
  const std::string p = path("wedged.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  EXPECT_THROW(write_all(*f, "abc", 3, p, fast_retry()), std::runtime_error);
}

TEST_F(IoEnvTest, TransientFsyncRetriesStickyDoesNot) {
  FaultInjectingEnv env(Env::posix());
  FaultRule rule;
  rule.ops = kOpFsync;
  rule.kind = FaultKind::kTransientFsync;
  rule.param = 2;  // two EINTRs, then the fsync goes through
  env.add_rule(rule);
  const std::string p = path("fsync.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, "abc", 3, p);
  sync_file(*f, p);  // transparently survives the transient failures
  EXPECT_EQ(env.durable_bytes(p), 3u);

  // Sticky: the first failure drops the dirty pages; every later fsync of
  // the same file must keep failing rather than report false durability.
  FaultInjectingEnv env2(Env::posix());
  FaultRule sticky;
  sticky.ops = kOpFsync;
  sticky.kind = FaultKind::kStickyFsync;
  env2.add_rule(sticky);
  const std::string q = path("sticky.bin");
  auto g = open_file(env2, q, OpenMode::kTruncate);
  write_all(*g, "abc", 3, q);
  EXPECT_THROW(sync_file(*g, q), std::runtime_error);
  EXPECT_THROW(sync_file(*g, q), std::runtime_error);  // still poisoned
  EXPECT_EQ(env2.durable_bytes(q), 0u) << "dropped pages never became durable";
}

TEST_F(IoEnvTest, EnospcShortWriteThenHardFailure) {
  FaultInjectingEnv env(Env::posix());
  FaultRule rule;
  rule.ops = kOpWrite;
  rule.kind = FaultKind::kEnospc;
  rule.after = 1;
  rule.param = 2;  // match 1 accepts 2 bytes, every later write fails
  env.add_rule(rule);
  const std::string p = path("enospc.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, "aaaa", 4, p);  // match 0: clean
  EXPECT_THROW(write_all(*f, "bbbb", 4, p), std::runtime_error);
  int err = 0;
  ASSERT_EQ(f->close(err), 0);
  // The torn tail a full disk leaves behind: 4 clean + 2 accepted bytes.
  EXPECT_EQ(read_or_die(env, p), "aaaabb");
}

TEST_F(IoEnvTest, DiskBudgetExhausts) {
  FaultInjectingEnv env(Env::posix());
  env.set_disk_budget(6);
  const std::string p = path("budget.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, "aaaa", 4, p);
  EXPECT_THROW(write_all(*f, "bbbb", 4, p), std::runtime_error);  // 2 fit
  env.clear_disk_budget();
  write_all(*f, "cc", 2, p);  // space freed: writes work again
  int err = 0;
  ASSERT_EQ(f->close(err), 0);
  EXPECT_EQ(read_or_die(env, p), "aaaabbcc");
}

TEST_F(IoEnvTest, PowerLossKeepsOnlyFsyncedBytes) {
  FaultInjectingEnv env(Env::posix());
  const std::string p = path("data.bin");
  write_durable(env, p, "durable!");
  {
    auto f = open_file(env, p, OpenMode::kAppend);
    write_all(*f, " lost", 5, p);  // never fsynced
    int err = 0;
    ASSERT_EQ(f->close(err), 0);
  }
  EXPECT_EQ(read_or_die(env, p), "durable! lost");  // live view
  env.simulate_power_loss();
  EXPECT_EQ(read_or_die(env, p), "durable!");  // rebooted view
}

TEST_F(IoEnvTest, PowerLossDropsUndirsyncedCreation) {
  FaultInjectingEnv env(Env::posix());
  // Entry durable but data never fsynced: survives as an empty file. This
  // half runs first — a directory fsync persists EVERY entry in the dir,
  // so it must happen before the never-dirsynced file below is created.
  const std::string q = path("no_datasync.bin");
  {
    auto f = open_file(env, q, OpenMode::kTruncate);
    write_all(*f, "abc", 3, q);
    int err = 0;
    ASSERT_EQ(f->close(err), 0);
    sync_parent_dir(env, q);
  }
  // Data fsynced but the directory entry never was: the pessimal model
  // loses the whole file.
  const std::string p = path("no_dirsync.bin");
  {
    auto f = open_file(env, p, OpenMode::kTruncate);
    write_all(*f, "abc", 3, p);
    sync_file(*f, p);
    int err = 0;
    ASSERT_EQ(f->close(err), 0);
  }
  env.simulate_power_loss();
  EXPECT_FALSE(env.exists(p));
  ASSERT_TRUE(env.exists(q));
  EXPECT_EQ(env.file_size(q), 0);
}

TEST_F(IoEnvTest, TornRenameRevertsWithoutDirFsync) {
  FaultInjectingEnv env(Env::posix());
  const std::string dst = path("target.bin");
  const std::string tmp = path("target.bin.tmp");
  write_durable(env, dst, "old");
  {
    auto f = open_file(env, tmp, OpenMode::kTruncate);
    write_all(*f, "new!", 4, tmp);
    sync_file(*f, tmp);
    int err = 0;
    ASSERT_EQ(f->close(err), 0);
  }
  int err = 0;
  ASSERT_EQ(env.rename(tmp, dst, err), 0);
  EXPECT_EQ(read_or_die(env, dst), "new!");  // live view sees the rename
  env.simulate_power_loss();                 // ...but it was never dirsynced
  EXPECT_EQ(read_or_die(env, dst), "old") << "torn rename must revert";
  EXPECT_FALSE(env.exists(tmp)) << "tmp entry was never durable";
}

TEST_F(IoEnvTest, DirsyncedRenameSurvivesPowerLoss) {
  FaultInjectingEnv env(Env::posix());
  const std::string dst = path("target.bin");
  const std::string tmp = path("target.bin.tmp");
  write_durable(env, dst, "old");
  {
    auto f = open_file(env, tmp, OpenMode::kTruncate);
    write_all(*f, "new!", 4, tmp);
    sync_file(*f, tmp);
    int err = 0;
    ASSERT_EQ(f->close(err), 0);
  }
  int err = 0;
  ASSERT_EQ(env.rename(tmp, dst, err), 0);
  sync_parent_dir(env, dst);  // the step that makes the publish atomic
  env.simulate_power_loss();
  EXPECT_EQ(read_or_die(env, dst), "new!");
}

TEST_F(IoEnvTest, UndirsyncedUnlinkResurrects) {
  FaultInjectingEnv env(Env::posix());
  const std::string p = path("ghost.bin");
  write_durable(env, p, "back from the dead");
  int err = 0;
  ASSERT_EQ(env.unlink(p, err), 0);
  EXPECT_FALSE(env.exists(p));
  env.simulate_power_loss();  // unlink entry never dirsynced
  ASSERT_TRUE(env.exists(p));
  EXPECT_EQ(read_or_die(env, p), "back from the dead");

  ASSERT_EQ(env.unlink(p, err), 0);
  sync_parent_dir(env, p);  // now the removal is durable
  env.simulate_power_loss();
  EXPECT_FALSE(env.exists(p));
}

TEST_F(IoEnvTest, PowerCutFailsEverythingUntilReboot) {
  FaultInjectingEnv env(Env::posix());
  const std::string p = path("cut.bin");
  write_durable(env, p, "safe");
  // `after` counts matches from arming: the next op (the open) is match 0
  // and stays clean; the write is match 1 and hits the cut.
  env.arm_power_cut(1);
  auto f = open_file(env, p, OpenMode::kAppend);  // op before the cut: fine
  EXPECT_THROW(write_all(*f, "xx", 2, p, fast_retry()), std::runtime_error);
  EXPECT_TRUE(env.powered_off());
  int err = 0;
  EXPECT_EQ(env.open(p, OpenMode::kRead, err), nullptr);  // still dark
  EXPECT_EQ(err, EIO);
  env.simulate_power_loss();  // reboot
  EXPECT_FALSE(env.powered_off());
  EXPECT_EQ(read_or_die(env, p), "safe");
}

TEST_F(IoEnvTest, HandlesAreDeadAfterPowerLoss) {
  FaultInjectingEnv env(Env::posix());
  const std::string p = path("dead.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, "abc", 3, p);
  env.simulate_power_loss();
  int err = 0;
  EXPECT_EQ(f->write("x", 1, err), -1);
  EXPECT_EQ(err, EIO);
  EXPECT_EQ(f->sync(err), -1);
  EXPECT_EQ(f->close(err), 0) << "close is never a fault point";
}

TEST_F(IoEnvTest, PreexistingFilesAreAdoptedAsDurable) {
  // A file written outside the env (the previous process's output) is
  // adopted fully durable on first touch: power loss must not eat state
  // that a real reboot already persisted.
  const std::string p = path("adopted.bin");
  write_durable(Env::posix(), p, "previous run");
  FaultInjectingEnv env(Env::posix());
  EXPECT_EQ(read_or_die(env, p), "previous run");
  env.simulate_power_loss();
  EXPECT_EQ(read_or_die(env, p), "previous run");
}

TEST_F(IoEnvTest, LatencyRuleDelaysButSucceeds) {
  FaultInjectingEnv env(Env::posix());
  FaultRule rule;
  rule.ops = kOpWrite;
  rule.kind = FaultKind::kLatency;
  rule.param = 100;  // 100us: enough to exercise the path, not the clock
  rule.repeat = true;
  env.add_rule(rule);
  const std::string p = path("slow.bin");
  auto f = open_file(env, p, OpenMode::kTruncate);
  write_all(*f, "abc", 3, p);
  int err = 0;
  ASSERT_EQ(f->close(err), 0);
  EXPECT_EQ(read_or_die(env, p), "abc");
}

TEST_F(IoEnvTest, ChaosScheduleIsDeterministicInSeed) {
  const auto run = [&](std::uint64_t seed, const std::string& tag) {
    FaultInjectingEnv env(Env::posix());
    ChaosProfile profile;
    profile.seed = seed;
    profile.short_write_rate = 0.4;
    profile.eintr_rate = 0.3;
    env.enable_chaos(profile);
    env.set_record_history(true);
    const std::string p = path("chaos_" + tag + ".bin");
    auto f = open_file(env, p, OpenMode::kTruncate);
    for (int i = 0; i < 32; ++i) write_all(*f, "0123456789abcdef", 16, p);
    sync_file(*f, p);
    int err = 0;
    EXPECT_EQ(f->close(err), 0);
    EXPECT_EQ(read_or_die(env, p).size(), 32u * 16u)
        << "chaos noise must never corrupt completed writes";
    std::vector<bool> faulted;
    for (const OpRecord& rec : env.history()) faulted.push_back(rec.faulted);
    return faulted;
  };
  const auto a = run(7, "a1");
  const auto b = run(7, "a2");
  const auto c = run(8, "b");
  EXPECT_EQ(a, b) << "same seed, same schedule";
  EXPECT_NE(a, c) << "different seed, different schedule";
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0)
      << "a 40%/30% profile over ~40 ops should fault at least once";
}

TEST_F(IoEnvTest, HistoryCountsEveryFaultableOp) {
  FaultInjectingEnv env(Env::posix());
  env.set_record_history(true);
  const std::string p = path("hist.bin");
  write_durable(env, p, "x");
  int err = 0;
  ASSERT_EQ(env.rename(p, path("hist2.bin"), err), 0);
  ASSERT_EQ(env.unlink(path("hist2.bin"), err), 0);
  const std::vector<OpRecord> hist = env.history();
  ASSERT_EQ(hist.size(), env.ops_seen());
  // open + write + fsync + dir fsync + rename + unlink, indices 0..N.
  ASSERT_GE(hist.size(), 6u);
  for (std::size_t i = 0; i < hist.size(); ++i)
    EXPECT_EQ(hist[i].index, i);
  EXPECT_EQ(hist[0].op, kOpOpen);
  EXPECT_EQ(hist.back().op, kOpUnlink);
  // Metadata reads are not counted.
  (void)env.exists(p);
  (void)env.file_size(p);
  (void)env.list_dir(dir_.string());
  EXPECT_EQ(env.ops_seen(), hist.size());
}

}  // namespace
}  // namespace cdbp::io
