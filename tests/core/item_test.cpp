#include "core/item.h"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Item, BasicAccessors) {
  const Item r{7, 2.0, 10.0, 0.25};
  EXPECT_DOUBLE_EQ(r.length(), 8.0);
  EXPECT_DOUBLE_EQ(r.demand(), 2.0);
  EXPECT_TRUE(r.active_at(2.0));
  EXPECT_TRUE(r.active_at(10.0));  // closed interval per the paper
  EXPECT_FALSE(r.active_at(1.9));
  EXPECT_FALSE(r.active_at(10.1));
}

TEST(Item, OverlapsIsOpenIntervalIntersection) {
  const Item a{0, 0.0, 2.0, 0.5};
  const Item b{1, 2.0, 4.0, 0.5};  // touch at a point only
  const Item c{2, 1.0, 3.0, 0.5};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(DurationClass, PowerOfTwoBoundariesAreInclusive) {
  // l in (2^{i-1}, 2^i] -> class i.
  EXPECT_EQ(duration_class(2.0), 1);
  EXPECT_EQ(duration_class(2.0001), 2);
  EXPECT_EQ(duration_class(4.0), 2);
  EXPECT_EQ(duration_class(4.0001), 3);
  EXPECT_EQ(duration_class(1024.0), 10);
}

TEST(DurationClass, LengthOneClampsToClassOne) {
  // Documented deviation: the paper's classes start at i = 1 and length 1
  // falls outside all (2^{i-1}, 2^i]; we clamp it to class 1.
  EXPECT_EQ(duration_class(1.0), 1);
  EXPECT_EQ(duration_class(1.5), 1);
}

TEST(DurationClass, RejectsSubUnitLengths) {
  EXPECT_THROW((void)duration_class(0.5), std::invalid_argument);
  EXPECT_THROW((void)duration_class(0.0), std::invalid_argument);
  EXPECT_THROW((void)duration_class(-3.0), std::invalid_argument);
}

TEST(PhaseIndex, HalfOpenPhaseWindows) {
  // arrival in ((c-1) 2^i, c 2^i] -> phase c.
  EXPECT_EQ(phase_index(0.0, 3), 0);
  EXPECT_EQ(phase_index(0.0001, 3), 1);
  EXPECT_EQ(phase_index(8.0, 3), 1);
  EXPECT_EQ(phase_index(8.0001, 3), 2);
  EXPECT_EQ(phase_index(16.0, 3), 2);
}

TEST(PhaseIndex, RejectsNegativeArrival) {
  EXPECT_THROW((void)phase_index(-1.0, 2), std::invalid_argument);
}

TEST(DurationType, FullTypeOfAnItem) {
  const Item r{0, 9.0, 9.0 + 7.0, 0.1};  // length 7 -> i = 3; 9 in (8, 16]
  const DurationType t = duration_type(r);
  EXPECT_EQ(t.i, 3);
  EXPECT_EQ(t.c, 2);
  EXPECT_EQ(t.to_string(), "(3,2)");
}

TEST(DurationType, AtMostTwoPhasesAliveSimultaneously) {
  // Two items of the same class i are simultaneously active only if their
  // phases differ by at most 1. Exhaustive check over a small grid.
  const int i = 2;  // window 4
  for (double a1 = 0.0; a1 <= 40.0; a1 += 1.0) {
    for (double a2 = a1; a2 <= 40.0; a2 += 1.0) {
      const Item r1{0, a1, a1 + 4.0, 0.1};
      const Item r2{1, a2, a2 + 4.0, 0.1};
      if (!r1.overlaps(r2)) continue;
      const auto t1 = duration_type(r1);
      const auto t2 = duration_type(r2);
      ASSERT_EQ(t1.i, i);
      EXPECT_LE(std::abs(t1.c - t2.c), 1)
          << "a1=" << a1 << " a2=" << a2;
    }
  }
}

TEST(DurationType, HashAndEquality) {
  const DurationType a{3, 5}, b{3, 5}, c{3, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<DurationType>{}(a), std::hash<DurationType>{}(b));
}

TEST(TimeTypes, FitsInBinRespectsTolerance) {
  EXPECT_TRUE(fits_in_bin(0.5, 0.5));
  EXPECT_TRUE(fits_in_bin(0.5, 0.5 + 0.5 * kLoadEps));
  EXPECT_FALSE(fits_in_bin(0.5, 0.51));
}

TEST(TimeTypes, Log2Helpers) {
  EXPECT_EQ(floor_log2(1.0), 0);
  EXPECT_EQ(floor_log2(2.0), 1);
  EXPECT_EQ(floor_log2(3.0), 1);
  EXPECT_EQ(ceil_log2(1.0), 0);
  EXPECT_EQ(ceil_log2(2.0), 1);
  EXPECT_EQ(ceil_log2(3.0), 2);
  EXPECT_EQ(ceil_log2(1024.0), 10);
  EXPECT_EQ(floor_log2_u64(1), 0);
  EXPECT_EQ(floor_log2_u64(1024), 10);
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(65));
  EXPECT_EQ(trailing_zeros(40), 3);
  EXPECT_TRUE(is_multiple_of_pow2(24.0, 3));
  EXPECT_FALSE(is_multiple_of_pow2(20.0, 3));
  EXPECT_TRUE(is_multiple_of_pow2(0.0, 10));
}

}  // namespace
}  // namespace cdbp
