// The SoA ledger backend and its flat active-item map.
//
// The heavy cross-algorithm equivalence lives in
// tests/integration/equivalence_test.cpp (StorageEquivalence); this file
// covers the pieces directly: FlatItemMap behavior under growth and
// backward-shift deletion, the SoA ledger's observable state mirroring the
// reference backend op by op, its error paths, the *_into query variants,
// throughput mode (track_items=false), and cross-backend checkpoint
// compatibility (byte-identical buffers, either direction of restore).
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/flat_item_map.h"
#include "core/ledger.h"

namespace cdbp {
namespace {

// --- FlatItemMap -----------------------------------------------------------

TEST(FlatItemMap, InsertFindTakeEraseLifecycle) {
  FlatItemMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.insert(7, 2, 0.25));
  EXPECT_FALSE(map.insert(7, 3, 0.5));  // duplicate id keeps the original
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(map.find(7)->bin, 2);
  EXPECT_DOUBLE_EQ(map.find(7)->size, 0.25);
  EXPECT_EQ(map.find(8), nullptr);
  EXPECT_EQ(map.size(), 1u);

  BinId bin = kNoBin;
  Load size = 0.0;
  EXPECT_TRUE(map.take(7, bin, size));
  EXPECT_EQ(bin, 2);
  EXPECT_DOUBLE_EQ(size, 0.25);
  EXPECT_FALSE(map.take(7, bin, size));
  EXPECT_TRUE(map.empty());

  EXPECT_TRUE(map.insert(9, 1, 0.1));
  EXPECT_TRUE(map.erase(9));
  EXPECT_FALSE(map.erase(9));
}

TEST(FlatItemMap, ReservedKeyRejected) {
  FlatItemMap map;
  EXPECT_THROW(map.insert(FlatItemMap::kEmptyKey, 0, 0.1),
               std::invalid_argument);
}

TEST(FlatItemMap, MirrorsUnorderedMapUnderRandomChurn) {
  // Random insert/erase churn cross-checked against std::unordered_map:
  // exercises growth, collisions, and backward-shift deletion together.
  std::mt19937_64 rng(7);
  FlatItemMap map;
  std::unordered_map<ItemId, std::pair<BinId, Load>> mirror;
  for (int op = 0; op < 20000; ++op) {
    const ItemId id = static_cast<ItemId>(rng() % 4096);
    if (rng() % 3 != 0) {
      const BinId bin = static_cast<BinId>(rng() % 100);
      const Load size = static_cast<double>(rng() % 1000) / 1000.0;
      EXPECT_EQ(map.insert(id, bin, size),
                mirror.emplace(id, std::make_pair(bin, size)).second);
    } else {
      BinId bin = kNoBin;
      Load size = 0.0;
      const auto it = mirror.find(id);
      const bool expect_hit = it != mirror.end();
      EXPECT_EQ(map.take(id, bin, size), expect_hit);
      if (expect_hit) {
        EXPECT_EQ(bin, it->second.first);
        EXPECT_EQ(size, it->second.second);
        mirror.erase(it);
      }
    }
    ASSERT_EQ(map.size(), mirror.size());
  }
  // Everything still findable with the right payload after the churn.
  std::size_t visited = 0;
  map.for_each([&](const FlatItemMap::Slot& s) {
    const auto it = mirror.find(s.id);
    ASSERT_NE(it, mirror.end());
    EXPECT_EQ(s.bin, it->second.first);
    EXPECT_EQ(s.size, it->second.second);
    ++visited;
  });
  EXPECT_EQ(visited, mirror.size());
}

TEST(FlatItemMap, ClearResets) {
  FlatItemMap map;
  for (ItemId id = 0; id < 100; ++id) map.insert(id, 0, 0.1);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  EXPECT_TRUE(map.insert(5, 1, 0.2));
}

// --- SoA ledger behavior ---------------------------------------------------

TEST(LedgerSoa, MirrorsReferenceUnderRandomOps) {
  // Drive both backends through one random op sequence and compare every
  // observable after every op. Bitwise comparisons throughout: the SoA
  // backend must do the identical FP arithmetic.
  std::mt19937_64 rng(11);
  Ledger ref(LedgerStorage::kReference);
  Ledger soa(LedgerStorage::kSoa);
  EXPECT_EQ(soa.storage(), LedgerStorage::kSoa);
  EXPECT_STREQ(to_string(soa.storage()), "soa");
  EXPECT_STREQ(to_string(ref.storage()), "reference");

  Time now = 0.0;
  std::vector<ItemId> active;
  ItemId next_item = 0;
  for (int op = 0; op < 2000; ++op) {
    now += static_cast<double>(rng() % 4) * 0.25;
    const Load size = static_cast<double>(1 + rng() % 999) / 1000.0;
    const PoolId pool = static_cast<PoolId>(rng() % 3);
    if (active.empty() || rng() % 3 != 0) {
      BinId bin = ref.first_fit(pool, size);
      ASSERT_EQ(bin, soa.first_fit(pool, size));
      if (bin == kNoBin) {
        bin = ref.open_bin(now, pool, pool);
        ASSERT_EQ(bin, soa.open_bin(now, pool, pool));
      }
      ref.place(next_item, size, bin, now);
      soa.place(next_item, size, bin, now);
      active.push_back(next_item++);
    } else {
      const std::size_t k = rng() % active.size();
      const ItemId victim = active[k];
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
      ASSERT_EQ(ref.remove(victim, now), soa.remove(victim, now));
    }
    ASSERT_EQ(ref.open_bins(), soa.open_bins());
    ASSERT_EQ(ref.bins_opened(), soa.bins_opened());
    ASSERT_EQ(ref.active_items(), soa.active_items());
    ASSERT_EQ(ref.max_open(), soa.max_open());
    ASSERT_EQ(ref.total_usage(now), soa.total_usage(now));  // bitwise
    for (const PoolId p : {PoolId{0}, PoolId{1}, PoolId{2}}) {
      ASSERT_EQ(ref.best_fit(p, size), soa.best_fit(p, size));
      ASSERT_EQ(ref.worst_fit(p, size), soa.worst_fit(p, size));
      ASSERT_EQ(ref.newest_open_in_pool(p), soa.newest_open_in_pool(p));
      ASSERT_EQ(ref.open_count_in_pool(p), soa.open_count_in_pool(p));
      ASSERT_EQ(ref.open_bins_in_pool(p), soa.open_bins_in_pool(p));
      ASSERT_EQ(ref.open_bins_in_group(p), soa.open_bins_in_group(p));
    }
  }
  // Per-bin records and item lists agree once materialized.
  ASSERT_EQ(ref.records().size(), soa.records().size());
  for (std::size_t b = 0; b < ref.records().size(); ++b) {
    const BinRecord& r = ref.records()[b];
    const BinRecord& s = soa.records()[b];
    EXPECT_EQ(r.id, s.id);
    EXPECT_EQ(r.group, s.group);
    EXPECT_EQ(r.opened, s.opened);
    EXPECT_EQ(r.closed, s.closed);
    EXPECT_EQ(r.load, s.load);
    EXPECT_EQ(r.active_items, s.active_items);
    EXPECT_EQ(r.all_items, s.all_items);
    EXPECT_EQ(ref.pool_of(r.id), soa.pool_of(s.id));
  }
  ASSERT_EQ(ref.active_item_ids(), soa.active_item_ids());
}

TEST(LedgerSoa, ErrorPathsMatchReference) {
  Ledger soa(LedgerStorage::kSoa);
  const BinId b = soa.open_bin(0.0);
  soa.place(0, 0.7, b, 0.0);
  EXPECT_THROW(soa.place(1, 0.4, b, 0.0), std::logic_error);  // overflow
  EXPECT_THROW(soa.place(0, 0.1, b, 0.0), std::logic_error);  // double place
  EXPECT_THROW(soa.remove(99, 1.0), std::logic_error);        // ghost removal
  EXPECT_THROW(soa.open_bin(-1.0), std::logic_error);  // time backwards
  EXPECT_THROW((void)soa.load(42), std::out_of_range);  // unknown bin
  EXPECT_THROW((void)soa.record(42), std::out_of_range);
  soa.remove(0, 1.0);  // closes b
  EXPECT_THROW(soa.place(2, 0.1, b, 1.0), std::logic_error);  // closed bin
}

TEST(LedgerSoa, IntoVariantsMatchAllocatingQueries) {
  for (const LedgerStorage storage :
       {LedgerStorage::kReference, LedgerStorage::kSoa}) {
    Ledger ledger(storage);
    const BinId a = ledger.open_bin(0.0, /*group=*/1);
    const BinId b = ledger.open_bin(0.0, /*group=*/2);
    ledger.place(0, 0.3, a, 0.0);
    ledger.place(1, 0.4, b, 0.0);
    ledger.place(2, 0.2, a, 1.0);

    std::vector<BinId> bins{kNoBin};  // non-empty: _into must clear first
    ledger.open_bins_into(bins);
    EXPECT_EQ(bins, std::vector<BinId>(ledger.open_bins().begin(),
                                       ledger.open_bins().end()));
    ledger.open_bins_in_group_into(1, bins);
    EXPECT_EQ(bins, ledger.open_bins_in_group(1));
    ledger.open_bins_in_pool_into(1, bins);
    EXPECT_EQ(bins, ledger.open_bins_in_pool(1));
    ledger.open_bins_in_pool_into(99, bins);  // unknown pool clears
    EXPECT_TRUE(bins.empty());

    std::vector<ItemId> items{42};
    ledger.active_item_ids_into(items);
    EXPECT_EQ(items, ledger.active_item_ids());
    EXPECT_EQ(items, (std::vector<ItemId>{0, 1, 2}));
  }
}

TEST(LedgerSoa, ThroughputModeDropsItemLog) {
  for (const LedgerStorage storage :
       {LedgerStorage::kReference, LedgerStorage::kSoa}) {
    Ledger ledger(storage, /*track_items=*/false);
    EXPECT_FALSE(ledger.tracks_items());
    const BinId b = ledger.open_bin(0.0);
    ledger.place(0, 0.5, b, 0.0);
    ledger.place(1, 0.25, b, 0.0);
    // Costs and loads are unaffected; only the per-item history is gone.
    EXPECT_DOUBLE_EQ(ledger.load(b), 0.75);
    EXPECT_TRUE(ledger.record(b).all_items.empty());
    StateWriter w;
    EXPECT_THROW(ledger.save_state(w), std::logic_error);
  }
}

// --- Cross-backend checkpoints ---------------------------------------------

void drive(Ledger& ledger) {
  const BinId a = ledger.open_bin(0.0, /*group=*/0, /*pool=*/0);
  const BinId b = ledger.open_bin(1.0, /*group=*/1, /*pool=*/7);
  ledger.place(0, 0.5, a, 1.0);
  ledger.place(1, 0.25, b, 1.5);
  ledger.place(2, 0.125, a, 2.0);
  ledger.remove(0, 3.0);
  const BinId c = ledger.open_bin(4.0, /*group=*/0, /*pool=*/0);
  ledger.place(3, 0.875, c, 4.0);
  ledger.remove(3, 5.0);  // closes c
}

TEST(LedgerSoa, CheckpointsAreByteIdenticalAcrossBackends) {
  Ledger ref(LedgerStorage::kReference);
  Ledger soa(LedgerStorage::kSoa);
  drive(ref);
  drive(soa);
  StateWriter wr, ws;
  ref.save_state(wr);
  soa.save_state(ws);
  EXPECT_EQ(wr.buffer(), ws.buffer());
}

TEST(LedgerSoa, EitherBackendRestoresTheOtherBackendsCheckpoint) {
  for (const LedgerStorage writer_storage :
       {LedgerStorage::kReference, LedgerStorage::kSoa}) {
    Ledger writer(writer_storage);
    drive(writer);
    StateWriter w;
    writer.save_state(w);
    for (const LedgerStorage reader_storage :
         {LedgerStorage::kReference, LedgerStorage::kSoa}) {
      Ledger restored(reader_storage);
      StateReader r(w.buffer());
      restored.load_state(r);
      EXPECT_TRUE(r.at_end());
      // Identical observable state, including the capacity indexes...
      EXPECT_EQ(restored.open_bins(), writer.open_bins());
      EXPECT_EQ(restored.total_usage(5.0), writer.total_usage(5.0));
      EXPECT_EQ(restored.first_fit(0, 0.3), writer.first_fit(0, 0.3));
      EXPECT_EQ(restored.best_fit(7, 0.3), writer.best_fit(7, 0.3));
      EXPECT_EQ(restored.active_item_ids(), writer.active_item_ids());
      // ...and a re-serialization reproduces the original bytes.
      StateWriter again;
      restored.save_state(again);
      EXPECT_EQ(again.buffer(), w.buffer());
    }
  }
}

TEST(LedgerSoa, LoadStateRequiresFreshLedger) {
  Ledger writer(LedgerStorage::kSoa);
  drive(writer);
  StateWriter w;
  writer.save_state(w);
  Ledger dirty(LedgerStorage::kSoa);
  dirty.open_bin(0.0);
  StateReader r(w.buffer());
  EXPECT_THROW(dirty.load_state(r), std::logic_error);
}

}  // namespace
}  // namespace cdbp
