#include "core/ledger.h"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Ledger, OpenPlaceRemoveLifecycle) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  EXPECT_EQ(ledger.open_count(), 1u);
  EXPECT_TRUE(ledger.is_open(b));

  ledger.place(0, 0.5, b, 0.0);
  EXPECT_DOUBLE_EQ(ledger.load(b), 0.5);
  EXPECT_EQ(ledger.bin_of(0), b);
  EXPECT_EQ(ledger.active_items(), 1u);

  EXPECT_EQ(ledger.remove(0, 3.0), b);
  EXPECT_FALSE(ledger.is_open(b));
  EXPECT_EQ(ledger.open_count(), 0u);
  EXPECT_EQ(ledger.bin_of(0), kNoBin);
  EXPECT_DOUBLE_EQ(ledger.total_usage(3.0), 3.0);
}

TEST(Ledger, UsageAccountingOpenAndClosedBins) {
  Ledger ledger;
  const BinId b1 = ledger.open_bin(0.0);
  ledger.place(0, 0.4, b1, 0.0);
  const BinId b2 = ledger.open_bin(1.0);
  ledger.place(1, 0.4, b2, 1.0);
  // At t=2: b1 open 2, b2 open 1.
  EXPECT_DOUBLE_EQ(ledger.total_usage(2.0), 3.0);
  ledger.remove(0, 2.0);  // closes b1 (span 2)
  EXPECT_DOUBLE_EQ(ledger.total_usage(5.0), 2.0 + 4.0);
}

TEST(Ledger, CapacityEnforced) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.7, b, 0.0);
  EXPECT_FALSE(ledger.fits(b, 0.4));
  EXPECT_TRUE(ledger.fits(b, 0.3));
  EXPECT_THROW(ledger.place(1, 0.4, b, 0.0), std::logic_error);
  ledger.place(1, 0.3, b, 0.0);  // exactly full is allowed
  EXPECT_DOUBLE_EQ(ledger.load(b), 1.0);
}

TEST(Ledger, ClosedBinsRejectPlacement) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.5, b, 0.0);
  ledger.remove(0, 1.0);
  EXPECT_FALSE(ledger.fits(b, 0.1));
  EXPECT_THROW(ledger.place(1, 0.1, b, 1.0), std::logic_error);
}

TEST(Ledger, DoublePlacementAndGhostRemovalRejected) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.2, b, 0.0);
  EXPECT_THROW(ledger.place(0, 0.2, b, 0.0), std::logic_error);
  EXPECT_THROW(ledger.remove(99, 1.0), std::logic_error);
}

TEST(Ledger, TimeMustNotMoveBackwards) {
  Ledger ledger;
  ledger.open_bin(5.0);
  EXPECT_THROW(ledger.open_bin(4.0), std::logic_error);
}

TEST(Ledger, OpenBinsOrderedByOpening) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  const BinId b = ledger.open_bin(1.0);
  const BinId c = ledger.open_bin(2.0);
  ledger.place(0, 0.1, a, 2.0);
  ledger.place(1, 0.1, b, 2.0);
  ledger.place(2, 0.1, c, 2.0);
  ledger.remove(1, 3.0);  // closes b
  const auto& open = ledger.open_bins();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(*open.begin(), a);
  EXPECT_EQ(*std::next(open.begin()), c);
}

TEST(Ledger, GroupsQueries) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0, 1);
  const BinId b = ledger.open_bin(0.0, 2);
  const BinId c = ledger.open_bin(0.0, 1);
  EXPECT_EQ(ledger.group_of(a), 1);
  EXPECT_EQ(ledger.group_of(b), 2);
  EXPECT_EQ(ledger.open_count_in_group(1), 2u);
  EXPECT_EQ(ledger.open_count_in_group(2), 1u);
  const auto g1 = ledger.open_bins_in_group(1);
  ASSERT_EQ(g1.size(), 2u);
  EXPECT_EQ(g1[0], a);
  EXPECT_EQ(g1[1], c);
}

TEST(Ledger, MaxOpenTracksPeak) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  ledger.place(0, 0.1, a, 0.0);
  const BinId b = ledger.open_bin(0.0);
  ledger.place(1, 0.1, b, 0.0);
  ledger.remove(0, 1.0);
  ledger.open_bin(2.0);
  EXPECT_EQ(ledger.max_open(), 2u);
}

TEST(Ledger, OpenBinsProfile) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  ledger.place(0, 0.1, a, 0.0);
  const BinId b = ledger.open_bin(1.0);
  ledger.place(1, 0.1, b, 1.0);
  ledger.remove(0, 2.0);
  ledger.remove(1, 4.0);
  const StepFunction f = ledger.open_bins_profile(4.0);
  EXPECT_DOUBLE_EQ(f.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.at(1.5), 2.0);
  EXPECT_DOUBLE_EQ(f.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f.integral(), ledger.total_usage(4.0));
}

TEST(Ledger, LoadResidueClearedOnClose) {
  // Sizes that do not sum exactly in floating point must not leave a
  // residue that blocks the "empty" detection.
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  for (int i = 0; i < 10; ++i)
    ledger.place(i, 0.1, b, 0.0);
  for (int i = 0; i < 10; ++i) ledger.remove(i, 1.0);
  EXPECT_FALSE(ledger.is_open(b));
  EXPECT_DOUBLE_EQ(ledger.record(b).load, 0.0);
}

TEST(Ledger, RecordHistoryKeepsAllItems) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.9, b, 0.0);
  ledger.remove(0, 1.0);
  const BinId b2 = ledger.open_bin(1.0);
  ledger.place(1, 0.9, b2, 1.0);
  ledger.remove(1, 2.0);
  EXPECT_EQ(ledger.bins_opened(), 2u);
  EXPECT_EQ(ledger.record(b).all_items.size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.record(b).usage(99.0), 1.0);  // closed: span fixed
}

TEST(Ledger, UnknownBinThrows) {
  Ledger ledger;
  EXPECT_THROW((void)ledger.load(0), std::out_of_range);
  EXPECT_THROW((void)ledger.record(-1), std::out_of_range);
}

}  // namespace
}  // namespace cdbp
