#include "core/ledger.h"

#include <random>

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Ledger, OpenPlaceRemoveLifecycle) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  EXPECT_EQ(ledger.open_count(), 1u);
  EXPECT_TRUE(ledger.is_open(b));

  ledger.place(0, 0.5, b, 0.0);
  EXPECT_DOUBLE_EQ(ledger.load(b), 0.5);
  EXPECT_EQ(ledger.bin_of(0), b);
  EXPECT_EQ(ledger.active_items(), 1u);

  EXPECT_EQ(ledger.remove(0, 3.0), b);
  EXPECT_FALSE(ledger.is_open(b));
  EXPECT_EQ(ledger.open_count(), 0u);
  EXPECT_EQ(ledger.bin_of(0), kNoBin);
  EXPECT_DOUBLE_EQ(ledger.total_usage(3.0), 3.0);
}

TEST(Ledger, UsageAccountingOpenAndClosedBins) {
  Ledger ledger;
  const BinId b1 = ledger.open_bin(0.0);
  ledger.place(0, 0.4, b1, 0.0);
  const BinId b2 = ledger.open_bin(1.0);
  ledger.place(1, 0.4, b2, 1.0);
  // At t=2: b1 open 2, b2 open 1.
  EXPECT_DOUBLE_EQ(ledger.total_usage(2.0), 3.0);
  ledger.remove(0, 2.0);  // closes b1 (span 2)
  EXPECT_DOUBLE_EQ(ledger.total_usage(5.0), 2.0 + 4.0);
}

TEST(Ledger, CapacityEnforced) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.7, b, 0.0);
  EXPECT_FALSE(ledger.fits(b, 0.4));
  EXPECT_TRUE(ledger.fits(b, 0.3));
  EXPECT_THROW(ledger.place(1, 0.4, b, 0.0), std::logic_error);
  ledger.place(1, 0.3, b, 0.0);  // exactly full is allowed
  EXPECT_DOUBLE_EQ(ledger.load(b), 1.0);
}

TEST(Ledger, ClosedBinsRejectPlacement) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.5, b, 0.0);
  ledger.remove(0, 1.0);
  EXPECT_FALSE(ledger.fits(b, 0.1));
  EXPECT_THROW(ledger.place(1, 0.1, b, 1.0), std::logic_error);
}

TEST(Ledger, DoublePlacementAndGhostRemovalRejected) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.2, b, 0.0);
  EXPECT_THROW(ledger.place(0, 0.2, b, 0.0), std::logic_error);
  EXPECT_THROW(ledger.remove(99, 1.0), std::logic_error);
}

TEST(Ledger, TimeMustNotMoveBackwards) {
  Ledger ledger;
  ledger.open_bin(5.0);
  EXPECT_THROW(ledger.open_bin(4.0), std::logic_error);
}

TEST(Ledger, OpenBinsOrderedByOpening) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  const BinId b = ledger.open_bin(1.0);
  const BinId c = ledger.open_bin(2.0);
  ledger.place(0, 0.1, a, 2.0);
  ledger.place(1, 0.1, b, 2.0);
  ledger.place(2, 0.1, c, 2.0);
  ledger.remove(1, 3.0);  // closes b
  const auto& open = ledger.open_bins();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(*open.begin(), a);
  EXPECT_EQ(*std::next(open.begin()), c);
}

TEST(Ledger, GroupsQueries) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0, 1);
  const BinId b = ledger.open_bin(0.0, 2);
  const BinId c = ledger.open_bin(0.0, 1);
  EXPECT_EQ(ledger.group_of(a), 1);
  EXPECT_EQ(ledger.group_of(b), 2);
  EXPECT_EQ(ledger.open_count_in_group(1), 2u);
  EXPECT_EQ(ledger.open_count_in_group(2), 1u);
  const auto g1 = ledger.open_bins_in_group(1);
  ASSERT_EQ(g1.size(), 2u);
  EXPECT_EQ(g1[0], a);
  EXPECT_EQ(g1[1], c);
}

TEST(Ledger, MaxOpenTracksPeak) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  ledger.place(0, 0.1, a, 0.0);
  const BinId b = ledger.open_bin(0.0);
  ledger.place(1, 0.1, b, 0.0);
  ledger.remove(0, 1.0);
  ledger.open_bin(2.0);
  EXPECT_EQ(ledger.max_open(), 2u);
}

TEST(Ledger, OpenBinsProfile) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0);
  ledger.place(0, 0.1, a, 0.0);
  const BinId b = ledger.open_bin(1.0);
  ledger.place(1, 0.1, b, 1.0);
  ledger.remove(0, 2.0);
  ledger.remove(1, 4.0);
  const StepFunction f = ledger.open_bins_profile(4.0);
  EXPECT_DOUBLE_EQ(f.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.at(1.5), 2.0);
  EXPECT_DOUBLE_EQ(f.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f.integral(), ledger.total_usage(4.0));
}

TEST(Ledger, LoadResidueClearedOnClose) {
  // Sizes that do not sum exactly in floating point must not leave a
  // residue that blocks the "empty" detection.
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  for (int i = 0; i < 10; ++i)
    ledger.place(i, 0.1, b, 0.0);
  for (int i = 0; i < 10; ++i) ledger.remove(i, 1.0);
  EXPECT_FALSE(ledger.is_open(b));
  EXPECT_DOUBLE_EQ(ledger.record(b).load, 0.0);
}

TEST(Ledger, RecordHistoryKeepsAllItems) {
  Ledger ledger;
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 0.9, b, 0.0);
  ledger.remove(0, 1.0);
  const BinId b2 = ledger.open_bin(1.0);
  ledger.place(1, 0.9, b2, 1.0);
  ledger.remove(1, 2.0);
  EXPECT_EQ(ledger.bins_opened(), 2u);
  EXPECT_EQ(ledger.record(b).all_items.size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.record(b).usage(99.0), 1.0);  // closed: span fixed
}

TEST(Ledger, UnknownBinThrows) {
  Ledger ledger;
  EXPECT_THROW((void)ledger.load(0), std::out_of_range);
  EXPECT_THROW((void)ledger.record(-1), std::out_of_range);
  EXPECT_THROW((void)ledger.pool_of(0), std::out_of_range);
}

TEST(Ledger, PoolDefaultsToGroupAndTracksSelection) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0, /*group=*/1);
  const BinId b = ledger.open_bin(0.0, /*group=*/2);
  EXPECT_EQ(ledger.pool_of(a), 1);
  EXPECT_EQ(ledger.pool_of(b), 2);
  ledger.place(0, 0.6, a, 0.0);
  EXPECT_EQ(ledger.first_fit(1, 0.3), a);
  EXPECT_EQ(ledger.first_fit(1, 0.5), kNoBin);  // a too full, b not in pool 1
  EXPECT_EQ(ledger.first_fit(2, 0.5), b);
  EXPECT_EQ(ledger.first_fit(99, 0.5), kNoBin);  // pool never created
}

TEST(Ledger, PoolMayDifferFromGroup) {
  // Hybrid keeps all CD bins in one group (for the paper's accounting) but
  // selects within per-type pools; the ledger must keep the two separate.
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0, /*group=*/2, /*pool=*/10);
  const BinId b = ledger.open_bin(0.0, /*group=*/2, /*pool=*/11);
  EXPECT_EQ(ledger.group_of(a), 2);
  EXPECT_EQ(ledger.group_of(b), 2);
  EXPECT_EQ(ledger.pool_of(a), 10);
  EXPECT_EQ(ledger.pool_of(b), 11);
  EXPECT_EQ(ledger.open_count_in_group(2), 2u);
  EXPECT_EQ(ledger.open_count_in_pool(10), 1u);
  EXPECT_EQ(ledger.first_fit(10, 0.5), a);
  EXPECT_EQ(ledger.first_fit(11, 0.5), b);
  EXPECT_EQ(ledger.open_bins_in_pool(11), std::vector<BinId>{b});
}

TEST(Ledger, PoolQueriesFollowPlaceRemoveClose) {
  Ledger ledger;
  const BinId a = ledger.open_bin(0.0, 0);
  const BinId b = ledger.open_bin(0.0, 0);
  ledger.place(0, 0.7, a, 0.0);
  ledger.place(1, 0.3, b, 0.0);
  EXPECT_EQ(ledger.best_fit(0, 0.2), a);   // fullest fitting
  EXPECT_EQ(ledger.worst_fit(0, 0.2), b);  // emptiest fitting
  EXPECT_EQ(ledger.newest_open_in_pool(0), b);
  ledger.place(2, 0.1, a, 1.0);
  ledger.remove(0, 2.0);  // a: load 0.1, still open
  EXPECT_EQ(ledger.worst_fit(0, 0.2), a);
  ledger.remove(2, 3.0);  // closes a
  EXPECT_EQ(ledger.best_fit(0, 0.2), b);
  EXPECT_EQ(ledger.newest_open_in_pool(0), b);
  ledger.remove(1, 4.0);  // closes b; pool empty
  EXPECT_EQ(ledger.first_fit(0, 0.01), kNoBin);
  EXPECT_EQ(ledger.newest_open_in_pool(0), kNoBin);
  EXPECT_EQ(ledger.open_count_in_pool(0), 0u);
}

TEST(Ledger, RemoveClampsNegativeResidue) {
  // Adding two sizes and subtracting them again can round below zero
  // ((t + a + b) - a - b < 0 for about half of all pairs); with a tiny
  // sentinel item keeping the bin open, that residue used to persist as a
  // negative load. remove() must clamp it back to zero.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.05, 0.45);
  const double t = 1e-18;  // sentinel: vanishes in every sum below
  int negatives_checked = 0;
  for (int k = 0; k < 1000 && negatives_checked < 10; ++k) {
    const double a = unit(rng);
    const double b = unit(rng);
    const double residue = ((t + a + b) - a) - b;  // ledger's exact op order
    if (residue >= 0.0) continue;
    ++negatives_checked;
    Ledger ledger;
    const BinId bin = ledger.open_bin(0.0);
    ledger.place(0, t, bin, 0.0);
    ledger.place(1, a, bin, 0.0);
    ledger.place(2, b, bin, 0.0);
    ledger.remove(1, 1.0);
    ledger.remove(2, 1.0);
    ASSERT_TRUE(ledger.is_open(bin));
    EXPECT_GE(ledger.load(bin), 0.0) << "a=" << a << " b=" << b;
    // An emptied-but-open bin must accept a full-size item again.
    EXPECT_TRUE(ledger.fits(bin, 1.0));
  }
  // The probe must have exercised real negative-residue cases, otherwise
  // this test is vacuous.
  EXPECT_GT(negatives_checked, 0);
}

TEST(Ledger, LoadStaysNonNegativeUnderChurn) {
  // Satellite regression for the remove() clamp: many place/remove cycles
  // with awkward sizes must never drive a bin's load negative, and an
  // exactly-fitting item must always be accepted.
  Ledger ledger;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> unit(0.01, 0.3);
  const BinId b = ledger.open_bin(0.0);
  ledger.place(0, 1e-9, b, 0.0);  // sentinel keeps the bin open
  ItemId next = 1;
  std::vector<std::pair<ItemId, Load>> resident;
  Time now = 0.0;
  for (int step = 0; step < 100000; ++step) {
    now += 1e-6;
    const bool add = resident.size() < 3 ||
                     (resident.size() < 6 && (rng() & 1) != 0);
    if (add) {
      const Load s = unit(rng);
      if (ledger.fits(b, s)) {
        ledger.place(next, s, b, now);
        resident.emplace_back(next, s);
        ++next;
      }
    } else {
      const std::size_t pick = rng() % resident.size();
      ledger.remove(resident[pick].first, now);
      resident.erase(resident.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_GE(ledger.load(b), 0.0) << "step " << step;
    // Headroom the record claims must actually be grantable.
    const Load headroom = kBinCapacity - ledger.load(b);
    if (headroom > 0.0) {
      ASSERT_TRUE(ledger.fits(b, headroom));
    }
  }
}

}  // namespace
}  // namespace cdbp
