#include "core/metrics.h"

#include <gtest/gtest.h>

#include "algos/hybrid.h"
#include "core/simulator.h"
#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Metrics, EmptyRun) {
  const RunMetrics m = compute_metrics(Instance{}, RunResult{});
  EXPECT_DOUBLE_EQ(m.cost, 0.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
  EXPECT_TRUE(m.cost_by_group.empty());
  EXPECT_FALSE(m.partial);  // nothing ran, nothing is missing
}

TEST(Metrics, HistoryFreeRunIsMarkedPartial) {
  const Instance in = make_instance({{0.0, 4.0, 0.3}, {1.0, 3.0, 0.25}});
  algos::Hybrid ha;
  const RunResult r =
      Simulator{SimulatorOptions{.keep_history = false}}.run(in, ha);
  const RunMetrics m = compute_metrics(in, r);
  EXPECT_TRUE(m.partial);
  // Cost and utilization don't need per-bin history; both are computed.
  EXPECT_DOUBLE_EQ(m.cost, 4.0);
  EXPECT_DOUBLE_EQ(m.utilization, (0.3 * 4 + 0.25 * 2) / 4.0);
  // The per-bin statistics are absent, not measured-as-zero.
  EXPECT_DOUBLE_EQ(m.mean_bin_span, 0.0);
  EXPECT_DOUBLE_EQ(m.max_bin_span, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_items_per_bin, 0.0);
  EXPECT_TRUE(m.cost_by_group.empty());
}

TEST(Metrics, HistoryRunIsNotPartial) {
  const Instance in = make_instance({{0.0, 4.0, 0.3}});
  algos::Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  EXPECT_FALSE(compute_metrics(in, r).partial);
}

TEST(Metrics, SingleBinNumbers) {
  // Sizes below HA's thresholds so both items share one GN bin.
  const Instance in = make_instance({{0.0, 4.0, 0.3}, {1.0, 3.0, 0.25}});
  algos::Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  const RunMetrics m = compute_metrics(in, r);
  EXPECT_DOUBLE_EQ(m.cost, 4.0);
  EXPECT_DOUBLE_EQ(m.utilization, (0.3 * 4 + 0.25 * 2) / 4.0);
  EXPECT_DOUBLE_EQ(m.mean_bin_span, 4.0);
  EXPECT_DOUBLE_EQ(m.max_bin_span, 4.0);
  EXPECT_DOUBLE_EQ(m.mean_items_per_bin, 2.0);
}

TEST(Metrics, GroupDecompositionMatchesTotal) {
  // One light type (GN) + one heavy type (CD): the group costs sum to the
  // total.
  const Instance in = make_instance({
      {0.0, 2.0, 0.2},
      {0.0, 4.0, 0.7},   // class 2 threshold ~0.354 -> CD
      {4.0, 6.0, 0.3},
  });
  algos::Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  const RunMetrics m = compute_metrics(in, r);
  double total = 0.0;
  for (const auto& [group, cost] : m.cost_by_group) {
    (void)group;
    total += cost;
  }
  EXPECT_NEAR(total, m.cost, 1e-9);
  EXPECT_TRUE(m.cost_by_group.contains(algos::kHybridGroupGN));
  EXPECT_TRUE(m.cost_by_group.contains(algos::kHybridGroupCD));
}

TEST(Metrics, UtilizationNeverExceedsOne) {
  const Instance in = make_instance({
      {0.0, 8.0, 0.9}, {0.0, 8.0, 0.9}, {2.0, 6.0, 0.1},
  });
  algos::Hybrid ha;
  const RunResult r = Simulator{}.run(in, ha);
  const RunMetrics m = compute_metrics(in, r);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  EXPECT_GT(m.utilization, 0.0);
}

}  // namespace
}  // namespace cdbp
