#include "core/session.h"

#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

TEST(InteractiveSession, MatchesSimulatorOnSameStream) {
  algos::FirstFit a1, a2;

  InteractiveSession session(a1);
  session.offer(0.0, 3.0, 0.6);
  session.offer(1.0, 2.0, 0.6);
  session.offer(2.0, 5.0, 0.3);
  const Cost interactive = session.finish();

  Instance in;
  in.add(0.0, 3.0, 0.6);
  in.add(1.0, 2.0, 0.6);
  in.add(2.0, 5.0, 0.3);
  in.finalize();
  EXPECT_DOUBLE_EQ(interactive, run_cost(in, a2));
}

TEST(InteractiveSession, OpenBinCountObservable) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  EXPECT_EQ(session.open_bins(), 0u);
  session.offer(0.0, 10.0, 0.7);
  EXPECT_EQ(session.open_bins(), 1u);
  session.offer(0.0, 10.0, 0.7);
  EXPECT_EQ(session.open_bins(), 2u);
  session.offer(0.0, 10.0, 0.2);  // fits into the first bin
  EXPECT_EQ(session.open_bins(), 2u);
}

TEST(InteractiveSession, AdvanceProcessesDepartures) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 1.0, 0.5);
  session.offer(0.0, 4.0, 0.9);
  EXPECT_EQ(session.open_bins(), 2u);
  session.advance_to(2.0);
  EXPECT_EQ(session.open_bins(), 1u);
  EXPECT_DOUBLE_EQ(session.clock(), 2.0);
}

TEST(InteractiveSession, CostSoFarCountsOpenBins) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 10.0, 0.5);
  session.advance_to(4.0);
  EXPECT_DOUBLE_EQ(session.cost_so_far(), 4.0);
}

TEST(InteractiveSession, RejectsTimeTravel) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(5.0, 6.0, 0.5);
  // Input validation, not an internal invariant: the serving front end
  // relies on std::invalid_argument specifically (and on no state change).
  EXPECT_THROW(session.offer(4.0, 6.0, 0.5), std::invalid_argument);
  EXPECT_THROW(session.advance_to(1.0), std::invalid_argument);
  EXPECT_THROW(session.offer(6.0, 6.0, 0.5), std::invalid_argument);
  EXPECT_THROW(session.offer(7.0, 7.0, 0.5), std::invalid_argument);
  EXPECT_EQ(session.clock(), 5.0);
  EXPECT_EQ(session.open_bins(), 1u);
  // A valid offer still goes through after the rejects.
  EXPECT_EQ(session.offer(5.0, 7.0, 0.5), 0);
}

TEST(InteractiveSession, ToInstanceRoundTrips) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 2.0, 0.5);
  session.offer(1.0, 4.0, 0.25);
  const Instance in = session.to_instance();
  ASSERT_EQ(in.size(), 2u);
  EXPECT_DOUBLE_EQ(in[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(in[1].departure, 4.0);
}

TEST(InteractiveSession, FinishOnEmptySessionIsZero) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  EXPECT_DOUBLE_EQ(session.finish(), 0.0);
}

/// Feeds `instance` to a Simulator run and an InteractiveSession built from
/// the same factory, comparing each item's bin and the final cost. The
/// session is the serving path; the simulator is the batch ground truth.
void check_session_matches_simulator(const testutil::NamedFactory& factory,
                                     const Instance& instance) {
  const AlgorithmPtr sim_algo = factory.make();
  SimulatorOptions opts;
  opts.keep_history = true;
  const RunResult batch = Simulator{opts}.run(instance, *sim_algo);
  ASSERT_EQ(batch.placements.size(), instance.size()) << factory.name;

  const AlgorithmPtr live_algo = factory.make();
  InteractiveSession session(*live_algo);
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const Item& it = instance[i];
    ASSERT_EQ(session.offer(it.arrival, it.departure, it.size),
              batch.placements[i].bin)
        << factory.name << ": placement diverged at item " << i;
  }
  EXPECT_EQ(session.finish(), batch.cost)
      << factory.name << ": costs not bit-identical";
}

TEST(InteractiveSession, MatchesSimulatorPerItemAcrossAlgorithms) {
  std::mt19937_64 rng(31);
  workloads::GeneralConfig cfg;
  cfg.target_items = 150;
  cfg.log2_mu = 6;
  cfg.horizon = 64.0;
  for (int trial = 0; trial < 3; ++trial) {
    const Instance instance = workloads::make_general_random(cfg, rng);
    for (const auto& factory : testutil::online_factories())
      check_session_matches_simulator(factory, instance);
  }
}

TEST(InteractiveSession, DepartureAtArrivalInstantIsDrainedFirst) {
  // The t-minus/t-plus boundary: an item departing at exactly t=4 leaves
  // BEFORE an item arriving at t=4 is placed. The emptied bin closes (bin
  // ids are usage periods, never reused), so the arrival opens a fresh bin
  // — but only ONE bin is open afterwards, and the cost is two disjoint
  // usage spans of 4, in both the simulator and the session.
  const Instance in =
      testutil::make_instance({{0.0, 4.0, 0.6}, {4.0, 8.0, 0.6}});
  for (const auto& factory : testutil::online_factories()) {
    const AlgorithmPtr algo = factory.make();
    SimulatorOptions opts;
    opts.keep_history = true;
    const RunResult batch = Simulator{opts}.run(in, *algo);
    EXPECT_NE(batch.placements[1].bin, batch.placements[0].bin)
        << factory.name << ": a closed bin must not be reused";

    const AlgorithmPtr live = factory.make();
    InteractiveSession session(*live);
    const BinId first = session.offer(0.0, 4.0, 0.6);
    const BinId second = session.offer(4.0, 8.0, 0.6);
    EXPECT_EQ(second, batch.placements[1].bin) << factory.name;
    EXPECT_NE(second, first) << factory.name;
    EXPECT_EQ(session.open_bins(), 1u)
        << factory.name << ": the t=4 departure was not drained first";
    EXPECT_EQ(session.finish(), batch.cost) << factory.name;
    EXPECT_DOUBLE_EQ(batch.cost, 8.0) << factory.name;
  }
}

TEST(InteractiveSession, SimultaneousDeparturesAllProcessedBeforeArrival) {
  // Several items leaving at the same instant must all clear before the
  // next arrival sees the bins: afterwards exactly one bin is open.
  const Instance in = testutil::make_instance({{0.0, 4.0, 0.6},
                                               {0.0, 4.0, 0.6},
                                               {0.0, 4.0, 0.6},
                                               {4.0, 5.0, 0.9}});
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 4.0, 0.6);
  session.offer(0.0, 4.0, 0.6);
  session.offer(0.0, 4.0, 0.6);
  EXPECT_EQ(session.open_bins(), 3u);
  session.offer(4.0, 5.0, 0.9);
  EXPECT_EQ(session.open_bins(), 1u);  // all three earlier bins drained

  algos::FirstFit ff2;
  SimulatorOptions opts;
  opts.keep_history = true;
  const RunResult batch = Simulator{opts}.run(in, ff2);
  EXPECT_EQ(session.finish(), batch.cost);
  // Three spans of 4 plus one span of 1; no overlap-inflated bins.
  EXPECT_DOUBLE_EQ(batch.cost, 13.0);
}

}  // namespace
}  // namespace cdbp
