#include "core/session.h"

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"

namespace cdbp {
namespace {

TEST(InteractiveSession, MatchesSimulatorOnSameStream) {
  algos::FirstFit a1, a2;

  InteractiveSession session(a1);
  session.offer(0.0, 3.0, 0.6);
  session.offer(1.0, 2.0, 0.6);
  session.offer(2.0, 5.0, 0.3);
  const Cost interactive = session.finish();

  Instance in;
  in.add(0.0, 3.0, 0.6);
  in.add(1.0, 2.0, 0.6);
  in.add(2.0, 5.0, 0.3);
  in.finalize();
  EXPECT_DOUBLE_EQ(interactive, run_cost(in, a2));
}

TEST(InteractiveSession, OpenBinCountObservable) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  EXPECT_EQ(session.open_bins(), 0u);
  session.offer(0.0, 10.0, 0.7);
  EXPECT_EQ(session.open_bins(), 1u);
  session.offer(0.0, 10.0, 0.7);
  EXPECT_EQ(session.open_bins(), 2u);
  session.offer(0.0, 10.0, 0.2);  // fits into the first bin
  EXPECT_EQ(session.open_bins(), 2u);
}

TEST(InteractiveSession, AdvanceProcessesDepartures) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 1.0, 0.5);
  session.offer(0.0, 4.0, 0.9);
  EXPECT_EQ(session.open_bins(), 2u);
  session.advance_to(2.0);
  EXPECT_EQ(session.open_bins(), 1u);
  EXPECT_DOUBLE_EQ(session.clock(), 2.0);
}

TEST(InteractiveSession, CostSoFarCountsOpenBins) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 10.0, 0.5);
  session.advance_to(4.0);
  EXPECT_DOUBLE_EQ(session.cost_so_far(), 4.0);
}

TEST(InteractiveSession, RejectsTimeTravel) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(5.0, 6.0, 0.5);
  EXPECT_THROW(session.offer(4.0, 6.0, 0.5), std::logic_error);
  EXPECT_THROW(session.advance_to(1.0), std::logic_error);
  EXPECT_THROW(session.offer(6.0, 6.0, 0.5), std::logic_error);
}

TEST(InteractiveSession, ToInstanceRoundTrips) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  session.offer(0.0, 2.0, 0.5);
  session.offer(1.0, 4.0, 0.25);
  const Instance in = session.to_instance();
  ASSERT_EQ(in.size(), 2u);
  EXPECT_DOUBLE_EQ(in[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(in[1].departure, 4.0);
}

TEST(InteractiveSession, FinishOnEmptySessionIsZero) {
  algos::FirstFit ff;
  InteractiveSession session(ff);
  EXPECT_DOUBLE_EQ(session.finish(), 0.0);
}

}  // namespace
}  // namespace cdbp
