#include "core/simulator.h"

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/validation.h"
#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Simulator, SingleItemCostIsItsLength) {
  const Instance in = make_instance({{1.0, 5.0, 0.5}});
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
  EXPECT_EQ(r.bins_opened, 1u);
  EXPECT_EQ(r.max_open, 1u);
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(Simulator, DeparturesProcessedBeforeArrivalsAtSameTime) {
  // Item 0 departs at t=1 exactly when item 1 arrives. The bin closes at
  // t=1, so First-Fit must open a fresh bin even though both items would
  // have fit together.
  const Instance in = make_instance({{0.0, 1.0, 0.6}, {1.0, 2.0, 0.6}});
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_EQ(r.bins_opened, 2u);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_EQ(r.max_open, 1u);  // never simultaneously open
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(Simulator, SameInstantDepartureFreesCapacityForArrival) {
  // Complement of the bin-closing case above: item 0 departs at t=1 but a
  // long-lived roommate keeps the bin open. Because departures drain
  // before arrivals (t- before t+, see docs/ALGORITHMS.md), the freed
  // capacity is visible to item 2 arriving at t=1, which therefore reuses
  // bin 0 instead of opening a second bin.
  const Instance in = make_instance({
      {0.0, 1.0, 0.6},  // departs exactly at t=1
      {0.0, 3.0, 0.3},  // roommate: keeps bin 0 open through t=1
      {1.0, 2.0, 0.6},  // would not fit bin 0 at t=1^-
  });
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_EQ(r.bins_opened, 1u);
  ASSERT_EQ(r.placements.size(), 3u);
  EXPECT_EQ(r.placements[2].bin, 0);
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(Simulator, SameTimeArrivalsPresentedInInstanceOrder) {
  // Two items at t=0; First-Fit packs the first into bin 0, the second
  // (too big for bin 0) into bin 1.
  const Instance in = make_instance({{0.0, 2.0, 0.7}, {0.0, 2.0, 0.5}});
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  ASSERT_EQ(r.placements.size(), 2u);
  EXPECT_EQ(r.placements[0].bin, 0);
  EXPECT_EQ(r.placements[1].bin, 1);
}

TEST(Simulator, CostEqualsOpenBinsIntegral) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.9},
      {1.0, 3.0, 0.9},
      {2.0, 6.0, 0.9},
  });
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_NEAR(r.cost, r.open_bins.integral(), 1e-9);
  EXPECT_TRUE(validate_run(in, r).ok());
}

TEST(Simulator, KeepHistoryFalseOmitsRecords) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}});
  algos::FirstFit ff;
  const RunResult r =
      Simulator{SimulatorOptions{.keep_history = false}}.run(in, ff);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
  EXPECT_TRUE(r.bins.empty());
  EXPECT_TRUE(r.placements.empty());
}

TEST(Simulator, ResetCalledBetweenRuns) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {0.5, 2.0, 0.4}});
  algos::FirstFit ff;
  const RunResult r1 = Simulator{}.run(in, ff);
  const RunResult r2 = Simulator{}.run(in, ff);
  EXPECT_DOUBLE_EQ(r1.cost, r2.cost);
  EXPECT_EQ(r1.bins_opened, r2.bins_opened);
}

TEST(Simulator, EmptyInstance) {
  const Instance in;
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.bins_opened, 0u);
}

TEST(Simulator, MisbehavingAlgorithmDetected) {
  // An algorithm that opens a bin but "forgets" to place the item.
  class Broken : public Algorithm {
   public:
    std::string name() const override { return "Broken"; }
    BinId on_arrival(const Item& item, Ledger& ledger) override {
      return ledger.open_bin(item.arrival);  // no place()
    }
  };
  const Instance in = make_instance({{0.0, 1.0, 0.5}});
  Broken broken;
  EXPECT_THROW(Simulator{}.run(in, broken), std::logic_error);
}

TEST(RunCost, MatchesFullRun) {
  const Instance in = make_instance({
      {0.0, 3.0, 0.5},
      {1.0, 2.0, 0.5},
      {1.5, 4.0, 0.5},
  });
  algos::BestFit bf1, bf2;
  EXPECT_DOUBLE_EQ(run_cost(in, bf1), Simulator{}.run(in, bf2).cost);
}

}  // namespace
}  // namespace cdbp
