#include "core/step_function.h"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(StepFunction, EmptyFunctionIsZeroEverywhere) {
  StepFunction f;
  EXPECT_DOUBLE_EQ(f.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.0);
  EXPECT_DOUBLE_EQ(f.support_measure(), 0.0);
  EXPECT_EQ(f.breakpoint_count(), 0u);
}

TEST(StepFunction, SingleIntervalBasics) {
  StepFunction f;
  f.add(1.0, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(f.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.at(1.0), 0.5);  // right-continuous
  EXPECT_DOUBLE_EQ(f.at(2.9), 0.5);
  EXPECT_DOUBLE_EQ(f.at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 1.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.5);
  EXPECT_DOUBLE_EQ(f.support_measure(), 2.0);
}

TEST(StepFunction, CeilIntegralRoundsUpFractionalLoads) {
  StepFunction f;
  f.add(0.0, 4.0, 0.25);  // ceil = 1 over 4 time units
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 4.0);
  f.add(1.0, 2.0, 1.0);  // total 1.25 -> ceil 2 over [1,2)
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 3.0 * 1.0 + 1.0 * 2.0);
}

TEST(StepFunction, CeilIntegralToleratesEpsilonBelowInteger) {
  StepFunction f;
  f.add(0.0, 1.0, 1.0 + 0.5 * kLoadEps);  // within tolerance of 1
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 1.0);
}

TEST(StepFunction, OverlappingIntervalsAccumulate) {
  StepFunction f;
  f.add(0.0, 10.0, 0.3);
  f.add(5.0, 15.0, 0.4);
  EXPECT_DOUBLE_EQ(f.at(4.0), 0.3);
  EXPECT_DOUBLE_EQ(f.at(5.0), 0.7);
  EXPECT_DOUBLE_EQ(f.at(12.0), 0.4);
  EXPECT_DOUBLE_EQ(f.integral(), 0.3 * 10 + 0.4 * 10);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.7);
  EXPECT_DOUBLE_EQ(f.support_measure(), 15.0);
}

TEST(StepFunction, NegativeIncrementsSupported) {
  StepFunction f;
  f.add(0.0, 10.0, 1.0);
  f.add(2.0, 4.0, -1.0);
  EXPECT_DOUBLE_EQ(f.at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(f.support_measure(), 8.0);
}

TEST(StepFunction, ZeroLengthAndZeroValueAddsIgnored) {
  StepFunction f;
  f.add(1.0, 1.0, 5.0);
  f.add(2.0, 1.0, 5.0);
  f.add(1.0, 2.0, 0.0);
  EXPECT_EQ(f.breakpoint_count(), 0u);
}

TEST(StepFunction, SamplesReportRightOpenValues) {
  StepFunction f;
  f.add(0.0, 2.0, 1.0);
  f.add(2.0, 3.0, 2.0);
  const auto samples = f.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].time, 0.0);
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].time, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_DOUBLE_EQ(samples[2].time, 3.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 0.0);
}

TEST(StepFunction, SumOperator) {
  StepFunction f, g;
  f.add(0.0, 2.0, 1.0);
  g.add(1.0, 3.0, 2.0);
  const StepFunction h = f + g;
  EXPECT_DOUBLE_EQ(h.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.at(1.5), 3.0);
  EXPECT_DOUBLE_EQ(h.at(2.5), 2.0);
  EXPECT_DOUBLE_EQ(h.integral(), f.integral() + g.integral());
}

TEST(StepFunction, MinMaxBreakpoints) {
  StepFunction f;
  f.add(-2.0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(f.min_breakpoint(), -2.0);
  EXPECT_DOUBLE_EQ(f.max_breakpoint(), 5.0);
}

TEST(StepFunction, AdjacentIntervalsMergeInSupport) {
  StepFunction f;
  f.add(0.0, 1.0, 0.5);
  f.add(1.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(f.support_measure(), 2.0);
  EXPECT_DOUBLE_EQ(f.integral(), 1.0);
}

TEST(StepFunction, ManyIntervalsIntegralMatchesClosedForm) {
  StepFunction f;
  double expect = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = i * 0.5;
    const double b = a + 2.0;
    f.add(a, b, 0.01 * i);
    expect += 2.0 * 0.01 * i;
  }
  EXPECT_NEAR(f.integral(), expect, 1e-9);
}

}  // namespace
}  // namespace cdbp
