#include "core/step_function.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(StepFunction, EmptyFunctionIsZeroEverywhere) {
  StepFunction f;
  EXPECT_DOUBLE_EQ(f.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.0);
  EXPECT_DOUBLE_EQ(f.support_measure(), 0.0);
  EXPECT_EQ(f.breakpoint_count(), 0u);
}

TEST(StepFunction, SingleIntervalBasics) {
  StepFunction f;
  f.add(1.0, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(f.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.at(1.0), 0.5);  // right-continuous
  EXPECT_DOUBLE_EQ(f.at(2.9), 0.5);
  EXPECT_DOUBLE_EQ(f.at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 1.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.5);
  EXPECT_DOUBLE_EQ(f.support_measure(), 2.0);
}

TEST(StepFunction, CeilIntegralRoundsUpFractionalLoads) {
  StepFunction f;
  f.add(0.0, 4.0, 0.25);  // ceil = 1 over 4 time units
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 4.0);
  f.add(1.0, 2.0, 1.0);  // total 1.25 -> ceil 2 over [1,2)
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 3.0 * 1.0 + 1.0 * 2.0);
}

TEST(StepFunction, CeilIntegralToleratesEpsilonBelowInteger) {
  StepFunction f;
  f.add(0.0, 1.0, 1.0 + 0.5 * kLoadEps);  // within tolerance of 1
  EXPECT_DOUBLE_EQ(f.ceil_integral(), 1.0);
}

TEST(StepFunction, OverlappingIntervalsAccumulate) {
  StepFunction f;
  f.add(0.0, 10.0, 0.3);
  f.add(5.0, 15.0, 0.4);
  EXPECT_DOUBLE_EQ(f.at(4.0), 0.3);
  EXPECT_DOUBLE_EQ(f.at(5.0), 0.7);
  EXPECT_DOUBLE_EQ(f.at(12.0), 0.4);
  EXPECT_DOUBLE_EQ(f.integral(), 0.3 * 10 + 0.4 * 10);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.7);
  EXPECT_DOUBLE_EQ(f.support_measure(), 15.0);
}

TEST(StepFunction, NegativeIncrementsSupported) {
  StepFunction f;
  f.add(0.0, 10.0, 1.0);
  f.add(2.0, 4.0, -1.0);
  EXPECT_DOUBLE_EQ(f.at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(f.support_measure(), 8.0);
}

TEST(StepFunction, ZeroLengthAndZeroValueAddsIgnored) {
  StepFunction f;
  f.add(1.0, 1.0, 5.0);
  f.add(2.0, 1.0, 5.0);
  f.add(1.0, 2.0, 0.0);
  EXPECT_EQ(f.breakpoint_count(), 0u);
}

TEST(StepFunction, SamplesReportRightOpenValues) {
  StepFunction f;
  f.add(0.0, 2.0, 1.0);
  f.add(2.0, 3.0, 2.0);
  const auto samples = f.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].time, 0.0);
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].time, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_DOUBLE_EQ(samples[2].time, 3.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 0.0);
}

TEST(StepFunction, SumOperator) {
  StepFunction f, g;
  f.add(0.0, 2.0, 1.0);
  g.add(1.0, 3.0, 2.0);
  const StepFunction h = f + g;
  EXPECT_DOUBLE_EQ(h.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.at(1.5), 3.0);
  EXPECT_DOUBLE_EQ(h.at(2.5), 2.0);
  EXPECT_DOUBLE_EQ(h.integral(), f.integral() + g.integral());
}

TEST(StepFunction, MinMaxBreakpoints) {
  StepFunction f;
  f.add(-2.0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(f.min_breakpoint(), -2.0);
  EXPECT_DOUBLE_EQ(f.max_breakpoint(), 5.0);
}

TEST(StepFunction, AdjacentIntervalsMergeInSupport) {
  StepFunction f;
  f.add(0.0, 1.0, 0.5);
  f.add(1.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(f.support_measure(), 2.0);
  EXPECT_DOUBLE_EQ(f.integral(), 1.0);
}

TEST(StepFunction, AtIsRightContinuousAtEveryBreakpoint) {
  // Contract (docs/ALGORITHMS.md): at(t) includes the deltas that fire AT
  // t, i.e. the function is right-continuous — at(t) = lim_{s->t+} f(s).
  // This is the StepFunction-level mirror of the simulator's
  // departures-before-arrivals rule: the value at a boundary is the
  // post-event value.
  StepFunction f;
  f.add(0.0, 2.0, 1.0);
  f.add(2.0, 4.0, 3.0);
  EXPECT_DOUBLE_EQ(f.at(2.0), 3.0);                 // not 1.0, not 4.0
  EXPECT_DOUBLE_EQ(f.at(std::nextafter(2.0, 0.0)), 1.0);  // left limit
  EXPECT_DOUBLE_EQ(f.at(4.0), 0.0);                 // final drop included
  EXPECT_DOUBLE_EQ(f.at(std::nextafter(4.0, 0.0)), 3.0);
  EXPECT_DOUBLE_EQ(f.at(0.0), 1.0);                 // first rise included
  EXPECT_DOUBLE_EQ(f.at(std::nextafter(0.0, -1.0)), 0.0);
}

TEST(StepFunction, CoincidentDeltasCollapseToOneBreakpoint) {
  // Several intervals meeting at the same instant produce ONE breakpoint
  // whose value is the net of all deltas — a query at that instant must
  // never observe a partial sum.
  StepFunction f;
  f.add(0.0, 5.0, 1.0);
  f.add(5.0, 9.0, 2.0);   // -1 and +2 both at t=5
  f.add(5.0, 7.0, 4.0);   // +4 also at t=5
  EXPECT_DOUBLE_EQ(f.at(5.0), 6.0);
  const auto samples = f.samples();
  std::size_t hits = 0;
  for (const auto& s : samples)
    if (s.time == 5.0) ++hits;
  EXPECT_EQ(hits, 1u);
}

TEST(StepFunction, AddAfterQueryReFinalizes) {
  // Queries finalize the lazy event buffer; later add() calls must fold
  // into subsequent queries exactly as if all adds happened up front.
  StepFunction f;
  f.add(0.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(f.integral(), 2.0);  // forces finalization
  f.add(1.0, 3.0, 2.0);                 // straddles existing breakpoints
  EXPECT_DOUBLE_EQ(f.at(1.5), 3.0);
  EXPECT_DOUBLE_EQ(f.integral(), 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 3.0);
  f.add(0.5, 1.0, -1.0);
  EXPECT_DOUBLE_EQ(f.at(0.75), 0.0);
  EXPECT_DOUBLE_EQ(f.support_measure(), 2.5);
}

TEST(StepFunction, QueryIsLogarithmicNotLinear) {
  // Smoke-check the finalized representation: 200k breakpoints, then many
  // point queries. With the O(n)-per-at() map walk this takes seconds;
  // with binary search it is instant. Keeps the complexity claim honest
  // without a timing assertion.
  StepFunction f;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    f.add(static_cast<double>(i), static_cast<double>(i) + 1.5, 1.0);
  double acc = 0.0;
  for (int q = 0; q < 200000; ++q)
    acc += f.at(static_cast<double>(q % n) + 0.25);
  // Every probed point is covered by 1 or 2 intervals.
  EXPECT_GE(acc, static_cast<double>(n));
  EXPECT_EQ(f.breakpoint_count(), 2u * n);
}

TEST(StepFunction, ManyIntervalsIntegralMatchesClosedForm) {
  StepFunction f;
  double expect = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = i * 0.5;
    const double b = a + 2.0;
    f.add(a, b, 0.01 * i);
    expect += 2.0 * 0.01 * i;
  }
  EXPECT_NEAR(f.integral(), expect, 1e-9);
}

}  // namespace
}  // namespace cdbp
