#include "core/transforms.h"

#include <gtest/gtest.h>

#include "opt/bounds.h"
#include "test_util.h"
#include "workloads/binary_input.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Transforms, ShiftMovesTimestampsOnly) {
  const Instance in = make_instance({{0.0, 4.0, 0.5}, {1.0, 2.0, 0.25}});
  const Instance out = shift_time(in, 10.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].arrival, 10.0);
  EXPECT_DOUBLE_EQ(out[0].departure, 14.0);
  EXPECT_DOUBLE_EQ(out[0].size, 0.5);
  EXPECT_DOUBLE_EQ(out.total_demand(), in.total_demand());
  EXPECT_DOUBLE_EQ(out.mu(), in.mu());
}

TEST(Transforms, NegativeShiftAllowed) {
  const Instance in = make_instance({{8.0, 12.0, 0.5}});
  const Instance out = shift_time(in, -8.0);
  EXPECT_DOUBLE_EQ(out[0].arrival, 0.0);
}

TEST(Transforms, ScaleMultipliesTimeQuantities) {
  const Instance in = make_instance({{0.0, 4.0, 0.5}, {1.0, 2.0, 0.25}});
  const Instance out = scale_time(in, 2.0);
  EXPECT_DOUBLE_EQ(out.span(), 2.0 * in.span());
  EXPECT_DOUBLE_EQ(out.total_demand(), 2.0 * in.total_demand());
  EXPECT_DOUBLE_EQ(out.mu(), in.mu());
  EXPECT_THROW((void)scale_time(in, 0.0), std::invalid_argument);
  EXPECT_THROW((void)scale_time(in, -1.0), std::invalid_argument);
}

TEST(Transforms, NormalizeMinLength) {
  const Instance in = make_instance({{0.0, 0.5, 0.5}, {0.0, 2.0, 0.5}});
  const Instance out = normalize_min_length(in);
  EXPECT_DOUBLE_EQ(out.min_length(), 1.0);
  EXPECT_DOUBLE_EQ(out.mu(), in.mu());
  EXPECT_TRUE(normalize_min_length(Instance{}).empty());
}

TEST(Transforms, MergeSuperimposes) {
  const Instance a = make_instance({{0.0, 2.0, 0.5}});
  const Instance b = make_instance({{1.0, 3.0, 0.25}});
  const Instance m = merge(a, b);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.span(), 3.0);
  EXPECT_DOUBLE_EQ(m.total_demand(),
                   a.total_demand() + b.total_demand());
  EXPECT_EQ(m.max_concurrency(), 2u);
}

TEST(Transforms, ConcatAppendsWithGap) {
  const Instance a = make_instance({{0.0, 2.0, 0.5}});
  const Instance b = make_instance({{0.0, 3.0, 0.5}});
  const Instance c = concat(a, b, 4.0);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.horizon_end(), 2.0 + 4.0 + 3.0);
  EXPECT_FALSE(c.is_contiguous());
  EXPECT_DOUBLE_EQ(c.span(), 5.0);
  // Bounds add up across an idle gap.
  EXPECT_NEAR(opt::compute_bounds(c).lower(),
              opt::compute_bounds(a).lower() + opt::compute_bounds(b).lower(),
              1e-9);
}

TEST(Transforms, ConcatZeroGapTouches) {
  const Instance a = make_instance({{0.0, 2.0, 0.5}});
  const Instance b = make_instance({{0.0, 3.0, 0.5}});
  const Instance c = concat(a, b);
  EXPECT_TRUE(c.is_contiguous());
  EXPECT_THROW((void)concat(a, b, -1.0), std::invalid_argument);
}

TEST(Transforms, ConcatWithEmptySides) {
  const Instance a = make_instance({{0.0, 2.0, 0.5}});
  EXPECT_EQ(concat(a, Instance{}).size(), 1u);
  EXPECT_EQ(concat(Instance{}, a).size(), 1u);
}

TEST(Transforms, ScaledBinaryInputStaysAligned) {
  // Scaling an aligned input by a power of two preserves alignment.
  const Instance in = workloads::make_binary_input(4);
  EXPECT_TRUE(scale_time(in, 4.0).is_aligned());
  // Shifting by a multiple of mu preserves alignment too.
  EXPECT_TRUE(shift_time(in, 16.0).is_aligned());
  // Shifting by 1 breaks it (length-16 item lands at t=1).
  EXPECT_FALSE(shift_time(in, 1.0).is_aligned());
}

}  // namespace
}  // namespace cdbp
