#include "core/validation.h"

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"
#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

RunResult honest_run(const Instance& in) {
  algos::FirstFit ff;
  return Simulator{}.run(in, ff);
}

TEST(Validation, HonestRunPasses) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.5},
      {1.0, 3.0, 0.5},
      {2.0, 6.0, 0.5},
  });
  const ValidationReport rep = validate_run(in, honest_run(in));
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.to_string(), "OK");
}

TEST(Validation, DetectsMissingPlacement) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {0.0, 1.0, 0.4}});
  RunResult r = honest_run(in);
  r.placements.pop_back();
  EXPECT_FALSE(validate_run(in, r).ok());
}

TEST(Validation, DetectsDoublePlacement) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {0.0, 1.0, 0.4}});
  RunResult r = honest_run(in);
  r.placements.push_back(r.placements.front());
  EXPECT_FALSE(validate_run(in, r).ok());
}

TEST(Validation, DetectsOverloadedBin) {
  const Instance in = make_instance({{0.0, 2.0, 0.7}, {0.0, 2.0, 0.7}});
  RunResult r = honest_run(in);
  ASSERT_EQ(r.bins.size(), 2u);
  // Forge: claim both items sat in bin 0.
  r.bins[0].all_items = {0, 1};
  r.bins[1].all_items.clear();
  RunResult forged = r;
  forged.bins.pop_back();                 // drop the now-empty bin
  forged.cost = 2.0;
  forged.bins_opened = 1;
  EXPECT_FALSE(validate_run(in, forged).ok());
}

TEST(Validation, DetectsCostMismatch) {
  const Instance in = make_instance({{0.0, 2.0, 0.5}});
  RunResult r = honest_run(in);
  r.cost += 1.0;
  EXPECT_FALSE(validate_run(in, r).ok());
}

TEST(Validation, DetectsBinLifetimeViolation) {
  const Instance in = make_instance({{0.0, 2.0, 0.5}});
  RunResult r = honest_run(in);
  r.bins[0].closed = 1.0;  // claims to close before the item departs
  EXPECT_FALSE(validate_run(in, r).ok());
}

TEST(Validation, DetectsGapInsideBinSpan) {
  // A bin holding two disjoint items must have closed in between; a record
  // spanning across the gap is invalid.
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {3.0, 4.0, 0.5}});
  RunResult r = honest_run(in);
  ASSERT_EQ(r.bins.size(), 2u);
  RunResult forged = r;
  forged.bins[0].all_items = {0, 1};
  forged.bins[0].closed = 4.0;
  forged.bins.pop_back();
  forged.bins_opened = 1;
  forged.cost = 4.0;
  forged.placements = {{0, 0}, {1, 0}};
  EXPECT_FALSE(validate_run(in, forged).ok());
}

TEST(Validation, ReportListsAllIssues) {
  const Instance in = make_instance({{0.0, 2.0, 0.5}});
  RunResult r = honest_run(in);
  r.cost += 1.0;
  r.placements.clear();
  const ValidationReport rep = validate_run(in, r);
  EXPECT_GE(rep.issues.size(), 2u);
  EXPECT_NE(rep.to_string().find("issue"), std::string::npos);
}

}  // namespace
}  // namespace cdbp
