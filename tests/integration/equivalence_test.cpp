// Equivalence and invariance properties across execution paths:
//  * the batch Simulator and the interactive Session must produce
//    identical costs/placements for every algorithm on the same stream;
//  * OPT bounds are invariant under same-instant presentation reordering
//    (they depend on the multiset of items only);
//  * shifting an instance in time shifts nothing but timestamps.
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/simulator.h"
#include "opt/bounds.h"
#include "opt/repack.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

class SessionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionEquivalence, SimulatorAndSessionAgreeForEveryAlgorithm) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 120;
  cfg.log2_mu = 6;
  cfg.horizon = 48.0;
  const Instance in = workloads::make_general_random(cfg, rng);

  for (const auto& f : testutil::online_factories()) {
    auto batch_algo = f.make();
    const RunResult batch = Simulator{}.run(in, *batch_algo);

    auto live_algo = f.make();
    InteractiveSession session(*live_algo);
    std::vector<BinId> live_bins;
    for (const Item& r : in.items())
      live_bins.push_back(session.offer(r.arrival, r.departure, r.size));
    const Cost live_cost = session.finish();

    EXPECT_NEAR(batch.cost, live_cost, 1e-9) << f.name;
    ASSERT_EQ(batch.placements.size(), live_bins.size()) << f.name;
    for (std::size_t k = 0; k < live_bins.size(); ++k)
      EXPECT_EQ(batch.placements[k].bin, live_bins[k])
          << f.name << " item " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionEquivalence,
                         ::testing::Range<std::uint64_t>(0, 8));

class BoundsInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsInvariance, ReorderingSameInstantItemsChangesNoBound) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 100;
  cfg.log2_mu = 5;
  cfg.horizon = 10.0;  // dense: many shared instants
  cfg.integer_times = true;
  const Instance in = workloads::make_general_random(cfg, rng);

  std::vector<Item> items = in.items();
  std::shuffle(items.begin(), items.end(), rng);
  const Instance shuffled{items};

  const opt::Bounds a = opt::compute_bounds(in);
  const opt::Bounds b = opt::compute_bounds(shuffled);
  EXPECT_NEAR(a.demand, b.demand, 1e-9);
  EXPECT_NEAR(a.span, b.span, 1e-9);
  EXPECT_NEAR(a.ceil_integral, b.ceil_integral, 1e-9);
  // The repacking witness consumes events time-ordered, so it is also
  // order-invariant.
  EXPECT_NEAR(opt::repack_witness(in).cost, opt::repack_witness(shuffled).cost,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsInvariance,
                         ::testing::Range<std::uint64_t>(0, 8));

class TimeShiftInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeShiftInvariance, ShiftingTimestampsShiftsNothingElse) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 80;
  cfg.log2_mu = 5;
  const Instance in = workloads::make_general_random(cfg, rng);

  const double delta = 1024.0;  // dyadic: exact in double
  Instance shifted;
  for (const Item& r : in.items())
    shifted.add(r.arrival + delta, r.departure + delta, r.size);
  shifted.finalize();

  const opt::Bounds a = opt::compute_bounds(in);
  const opt::Bounds b = opt::compute_bounds(shifted);
  EXPECT_NEAR(a.demand, b.demand, 1e-9);
  EXPECT_NEAR(a.span, b.span, 1e-9);
  EXPECT_NEAR(a.ceil_integral, b.ceil_integral, 1e-9);

  // First-Fit ignores absolute time entirely.
  algos::FirstFit f1, f2;
  EXPECT_NEAR(run_cost(in, f1), run_cost(shifted, f2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeShiftInvariance,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace cdbp
