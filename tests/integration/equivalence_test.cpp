// Equivalence and invariance properties across execution paths:
//  * the batch Simulator and the interactive Session must produce
//    identical costs/placements for every algorithm on the same stream;
//  * indexed bin selection (capacity index) must reproduce the seed
//    linear-scan selection bit for bit, placement by placement;
//  * OPT bounds are invariant under same-instant presentation reordering
//    (they depend on the multiset of items only);
//  * shifting an instance in time shifts nothing but timestamps.
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "algos/cdff.h"
#include "algos/classify.h"
#include "algos/hybrid.h"
#include "core/session.h"
#include "core/simulator.h"
#include "opt/bounds.h"
#include "opt/repack.h"
#include "test_util.h"
#include "workloads/aligned_random.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

class SessionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionEquivalence, SimulatorAndSessionAgreeForEveryAlgorithm) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 120;
  cfg.log2_mu = 6;
  cfg.horizon = 48.0;
  const Instance in = workloads::make_general_random(cfg, rng);

  for (const auto& f : testutil::online_factories()) {
    auto batch_algo = f.make();
    const RunResult batch = Simulator{}.run(in, *batch_algo);

    auto live_algo = f.make();
    InteractiveSession session(*live_algo);
    std::vector<BinId> live_bins;
    for (const Item& r : in.items())
      live_bins.push_back(session.offer(r.arrival, r.departure, r.size));
    const Cost live_cost = session.finish();

    EXPECT_NEAR(batch.cost, live_cost, 1e-9) << f.name;
    ASSERT_EQ(batch.placements.size(), live_bins.size()) << f.name;
    for (std::size_t k = 0; k < live_bins.size(); ++k)
      EXPECT_EQ(batch.placements[k].bin, live_bins[k])
          << f.name << " item " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionEquivalence,
                         ::testing::Range<std::uint64_t>(0, 8));

// --- Indexed selection vs the seed linear scan -----------------------------
//
// The capacity index must be a pure data-structure change: every algorithm
// running in SelectMode::kIndexed has to pick the exact same bin as the
// seed SelectMode::kLinearScan implementation at every arrival, hence
// produce a bit-identical cost. 18 seeds x (7 general + 8 aligned)
// algorithm pairs = 270 instance/algorithm runs.

struct ModePair {
  std::string name;
  std::function<AlgorithmPtr()> indexed;
  std::function<AlgorithmPtr()> linear;
};

std::vector<ModePair> mode_pairs() {
  using namespace algos;
  const auto af = [](FitRule r, SelectMode m) {
    return std::make_unique<AnyFit>(r, m);
  };
  std::vector<ModePair> out;
  for (const FitRule r : {FitRule::kFirst, FitRule::kBest, FitRule::kWorst,
                          FitRule::kNext})
    out.push_back({AnyFit(r).name(),
                   [=] { return af(r, SelectMode::kIndexed); },
                   [=] { return af(r, SelectMode::kLinearScan); }});
  out.push_back({"CBD2",
                 [] {
                   return std::make_unique<ClassifyByDuration>(
                       2.0, FitRule::kFirst, 0.0, SelectMode::kIndexed);
                 },
                 [] {
                   return std::make_unique<ClassifyByDuration>(
                       2.0, FitRule::kFirst, 0.0, SelectMode::kLinearScan);
                 }});
  out.push_back({"HA",
                 [] { return std::make_unique<Hybrid>(); },
                 [] {
                   return std::make_unique<Hybrid>(
                       &Hybrid::paper_threshold, "HA", FitRule::kFirst,
                       SelectMode::kLinearScan);
                 }});
  out.push_back({"HA-best",
                 [] {
                   return std::make_unique<Hybrid>(&Hybrid::paper_threshold,
                                                   "HA-best", FitRule::kBest);
                 },
                 [] {
                   return std::make_unique<Hybrid>(
                       &Hybrid::paper_threshold, "HA-best", FitRule::kBest,
                       SelectMode::kLinearScan);
                 }});
  return out;
}

void expect_same_run(const Instance& in, const ModePair& pair) {
  auto idx_algo = pair.indexed();
  auto lin_algo = pair.linear();
  const RunResult idx = Simulator{}.run(in, *idx_algo);
  const RunResult lin = Simulator{}.run(in, *lin_algo);
  // Bitwise, not NEAR: identical selections must yield identical sums.
  EXPECT_EQ(idx.cost, lin.cost) << pair.name;
  ASSERT_EQ(idx.placements.size(), lin.placements.size()) << pair.name;
  for (std::size_t k = 0; k < idx.placements.size(); ++k)
    ASSERT_EQ(idx.placements[k].bin, lin.placements[k].bin)
        << pair.name << " item " << k;
}

class SelectionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectionEquivalence, IndexedMatchesLinearScanOnGeneralInstances) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 220;
  cfg.log2_mu = 6;
  cfg.horizon = 40.0;  // dense enough to keep many bins open
  const Instance in = workloads::make_general_random(cfg, rng);
  for (const ModePair& pair : mode_pairs()) expect_same_run(in, pair);
}

TEST_P(SelectionEquivalence, IndexedMatchesLinearScanOnAlignedInstances) {
  std::mt19937_64 rng(GetParam() + 1000);
  workloads::AlignedConfig cfg;
  cfg.max_bucket = 5;
  cfg.n = 6;
  const Instance in = workloads::make_aligned_random(cfg, rng);
  for (const ModePair& pair : mode_pairs()) expect_same_run(in, pair);
  // CDFF is only defined on aligned inputs, so it is checked here.
  const ModePair cdff{
      "CDFF",
      [] { return std::make_unique<algos::Cdff>(); },
      [] {
        return std::make_unique<algos::Cdff>(algos::FitRule::kFirst,
                                             algos::SelectMode::kLinearScan);
      }};
  expect_same_run(in, cdff);
  const ModePair cdbf{
      "CDBF",
      [] { return std::make_unique<algos::Cdff>(algos::FitRule::kBest); },
      [] {
        return std::make_unique<algos::Cdff>(algos::FitRule::kBest,
                                             algos::SelectMode::kLinearScan);
      }};
  expect_same_run(in, cdbf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionEquivalence,
                         ::testing::Range<std::uint64_t>(0, 18));

// --- SoA storage vs the reference AoS ledger layout ------------------------
//
// LedgerStorage::kSoa must be a pure data-layout change: every algorithm
// must produce bitwise-identical costs, the same placements, and the same
// per-bin records whether the ledger stores BinRecord structs or flat
// columns. Exercised on the same seed matrix as SelectionEquivalence, with
// both ledgers driven through the default (indexed) selection mode.

void expect_same_storage_run(const Instance& in,
                             const testutil::NamedFactory& f) {
  auto ref_algo = f.make();
  auto soa_algo = f.make();
  const RunResult ref =
      Simulator{SimulatorOptions{.storage = LedgerStorage::kReference}}.run(
          in, *ref_algo);
  const RunResult soa =
      Simulator{SimulatorOptions{.storage = LedgerStorage::kSoa}}.run(
          in, *soa_algo);
  // Bitwise, not NEAR: the SoA backend performs the identical FP ops in
  // the identical order.
  EXPECT_EQ(ref.cost, soa.cost) << f.name;
  EXPECT_EQ(ref.bins_opened, soa.bins_opened) << f.name;
  EXPECT_EQ(ref.max_open, soa.max_open) << f.name;
  ASSERT_EQ(ref.placements.size(), soa.placements.size()) << f.name;
  for (std::size_t k = 0; k < ref.placements.size(); ++k)
    ASSERT_EQ(ref.placements[k].bin, soa.placements[k].bin)
        << f.name << " item " << k;
  ASSERT_EQ(ref.bins.size(), soa.bins.size()) << f.name;
  for (std::size_t b = 0; b < ref.bins.size(); ++b) {
    EXPECT_EQ(ref.bins[b].group, soa.bins[b].group) << f.name << " bin " << b;
    EXPECT_EQ(ref.bins[b].opened, soa.bins[b].opened) << f.name << " bin " << b;
    EXPECT_EQ(ref.bins[b].closed, soa.bins[b].closed) << f.name << " bin " << b;
    EXPECT_EQ(ref.bins[b].load, soa.bins[b].load) << f.name << " bin " << b;
    EXPECT_EQ(ref.bins[b].all_items, soa.bins[b].all_items)
        << f.name << " bin " << b;
  }
}

class StorageEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageEquivalence, SoaMatchesReferenceOnGeneralInstances) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 220;
  cfg.log2_mu = 6;
  cfg.horizon = 40.0;  // dense enough to keep many bins open
  const Instance in = workloads::make_general_random(cfg, rng);
  for (const auto& f : testutil::online_factories())
    expect_same_storage_run(in, f);
}

TEST_P(StorageEquivalence, SoaMatchesReferenceOnAlignedInstances) {
  std::mt19937_64 rng(GetParam() + 1000);
  workloads::AlignedConfig cfg;
  cfg.max_bucket = 5;
  cfg.n = 6;
  const Instance in = workloads::make_aligned_random(cfg, rng);
  for (const auto& f : testutil::aligned_factories())
    expect_same_storage_run(in, f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageEquivalence,
                         ::testing::Range<std::uint64_t>(0, 18));

class BoundsInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsInvariance, ReorderingSameInstantItemsChangesNoBound) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 100;
  cfg.log2_mu = 5;
  cfg.horizon = 10.0;  // dense: many shared instants
  cfg.integer_times = true;
  const Instance in = workloads::make_general_random(cfg, rng);

  std::vector<Item> items = in.items();
  std::shuffle(items.begin(), items.end(), rng);
  const Instance shuffled{items};

  const opt::Bounds a = opt::compute_bounds(in);
  const opt::Bounds b = opt::compute_bounds(shuffled);
  EXPECT_NEAR(a.demand, b.demand, 1e-9);
  EXPECT_NEAR(a.span, b.span, 1e-9);
  EXPECT_NEAR(a.ceil_integral, b.ceil_integral, 1e-9);
  // The repacking witness consumes events time-ordered, so it is also
  // order-invariant.
  EXPECT_NEAR(opt::repack_witness(in).cost, opt::repack_witness(shuffled).cost,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsInvariance,
                         ::testing::Range<std::uint64_t>(0, 8));

class TimeShiftInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeShiftInvariance, ShiftingTimestampsShiftsNothingElse) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 80;
  cfg.log2_mu = 5;
  const Instance in = workloads::make_general_random(cfg, rng);

  const double delta = 1024.0;  // dyadic: exact in double
  Instance shifted;
  for (const Item& r : in.items())
    shifted.add(r.arrival + delta, r.departure + delta, r.size);
  shifted.finalize();

  const opt::Bounds a = opt::compute_bounds(in);
  const opt::Bounds b = opt::compute_bounds(shifted);
  EXPECT_NEAR(a.demand, b.demand, 1e-9);
  EXPECT_NEAR(a.span, b.span, 1e-9);
  EXPECT_NEAR(a.ceil_integral, b.ceil_integral, 1e-9);

  // First-Fit ignores absolute time entirely.
  algos::FirstFit f1, f2;
  EXPECT_NEAR(run_cost(in, f1), run_cost(shifted, f2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeShiftInvariance,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace cdbp
