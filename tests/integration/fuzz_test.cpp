// Fuzz-style stress suite: adversarially structured edge-case instances
// and randomly mutated workloads, run through every algorithm with full
// post-hoc validation. The goal is to shake out boundary bugs the
// structured suites cannot reach: exact-capacity stacks, touching
// intervals, duplicated items, pathological same-instant orderings.
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/validation.h"
#include "opt/bounds.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

void check_everyone(const Instance& in, const std::string& label) {
  const double lb = opt::compute_bounds(in).lower();
  for (const auto& f : testutil::online_factories()) {
    auto algo = f.make();
    const RunResult r = Simulator{}.run(in, *algo);
    const ValidationReport rep = validate_run(in, r);
    EXPECT_TRUE(rep.ok()) << label << " / " << f.name << ": "
                          << rep.to_string();
    EXPECT_GE(r.cost, lb - 1e-6) << label << " / " << f.name;
  }
}

TEST(Fuzz, ExactCapacityStacks) {
  // Items that fill bins to exactly 1.0 repeatedly.
  Instance in;
  for (int wave = 0; wave < 6; ++wave) {
    const Time t = wave * 2.0;
    for (int k = 0; k < 4; ++k) in.add(t, t + 2.0, 0.25);
    for (int k = 0; k < 2; ++k) in.add(t, t + 2.0, 0.5);
  }
  in.finalize();
  check_everyone(in, "exact-capacity");
}

TEST(Fuzz, IdenticalItemsBurst) {
  Instance in;
  for (int k = 0; k < 64; ++k) in.add(0.0, 1.0, 0.3);
  in.finalize();
  check_everyone(in, "identical");
}

TEST(Fuzz, TouchingIntervalChains) {
  // Long chains where departure_i == arrival_{i+1} exactly.
  Instance in;
  for (int k = 0; k < 40; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(k + 1), 0.6);
  in.finalize();
  check_everyone(in, "touching-chain");
}

TEST(Fuzz, NestedIntervals) {
  // Strictly nested intervals (matryoshka): stresses horizon bookkeeping.
  Instance in;
  for (int k = 0; k < 12; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(64 - k), 0.07);
  in.finalize();
  check_everyone(in, "nested");
}

TEST(Fuzz, FullSizeItems) {
  // Size exactly 1: every item needs a private bin.
  Instance in;
  for (int k = 0; k < 10; ++k)
    in.add(static_cast<Time>(k) * 0.5, static_cast<Time>(k) * 0.5 + 2.0, 1.0);
  in.finalize();
  check_everyone(in, "full-size");
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  EXPECT_EQ(r.bins_opened, in.size());
}

TEST(Fuzz, TinySizes) {
  Instance in;
  for (int k = 0; k < 200; ++k)
    in.add(static_cast<Time>(k % 7), static_cast<Time>(k % 7) + 1.0 + k % 3,
           1e-6);
  in.finalize();
  check_everyone(in, "tiny-sizes");
}

TEST(Fuzz, ExtremeDurationRatios) {
  Instance in;
  in.add(0.0, pow2(24), 0.5);  // mu = 2^24 against length-1 items
  for (int k = 0; k < 30; ++k)
    in.add(static_cast<Time>(k * 17 % 97), static_cast<Time>(k * 17 % 97) + 1.0,
           0.4);
  in.finalize();
  check_everyone(in, "extreme-mu");
}

class FuzzMutations : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzMutations, MutatedWorkloadsStayValid) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 120;
  cfg.log2_mu = 6;
  cfg.horizon = 48.0;
  Instance base = workloads::make_general_random(cfg, rng);

  // Mutations: duplicate random items, clone with jittered sizes, and
  // reverse same-instant presentation order.
  std::vector<Item> items = base.items();
  std::uniform_int_distribution<std::size_t> pick(0, items.size() - 1);
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  for (int m = 0; m < 20; ++m) {
    Item clone = items[pick(rng)];
    clone.size = std::clamp(clone.size * jitter(rng), 1e-6, 1.0);
    items.push_back(clone);
  }
  std::shuffle(items.begin(), items.end(), rng);
  Instance mutated{items};
  check_everyone(mutated, "mutated-" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMutations,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Fuzz, ManyInstantsOneItemEach) {
  Instance in;
  for (int k = 0; k < 500; ++k) {
    const Time t = static_cast<Time>(k) * 0.125;
    in.add(t, t + 1.0 + (k % 5), 0.2 + 0.1 * (k % 4));
  }
  in.finalize();
  check_everyone(in, "dense-instants");
}

}  // namespace
}  // namespace cdbp
