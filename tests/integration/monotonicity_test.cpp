// Monotonicity and scaling laws of the OPT machinery — the sanity facts a
// reviewer would check on paper, verified mechanically:
//  * adding an item never decreases any lower bound, the exact OPT_R, or
//    the exact OPT_NR;
//  * scaling all timestamps by a constant scales every time-integral
//    quantity by the same constant (sizes untouched);
//  * removing an item never increases the exact OPT_R.
#include <random>

#include <gtest/gtest.h>

#include "opt/bounds.h"
#include "opt/exact.h"
#include "opt/exact_repacking.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

Instance drop_item(const Instance& in, std::size_t index) {
  Instance out;
  for (std::size_t k = 0; k < in.size(); ++k) {
    if (k == index) continue;
    out.add(in[k].arrival, in[k].departure, in[k].size);
  }
  out.finalize();
  return out;
}

class Monotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Monotonicity, DroppingAnItemNeverRaisesOptima) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 10;
  cfg.log2_mu = 4;
  cfg.horizon = 12.0;
  const Instance full = workloads::make_general_random(cfg, rng);
  const auto full_r = opt::exact_opt_repacking(full);
  const auto full_nr = opt::exact_opt_nonrepacking(full);
  ASSERT_TRUE(full_r.has_value());
  ASSERT_TRUE(full_nr.has_value());
  const opt::Bounds full_b = opt::compute_bounds(full);

  for (std::size_t drop = 0; drop < full.size(); ++drop) {
    const Instance less = drop_item(full, drop);
    const auto less_r = opt::exact_opt_repacking(less);
    const auto less_nr = opt::exact_opt_nonrepacking(less);
    ASSERT_TRUE(less_r.has_value());
    ASSERT_TRUE(less_nr.has_value());
    EXPECT_LE(less_r->cost, full_r->cost + 1e-9) << "drop " << drop;
    EXPECT_LE(less_nr->cost, full_nr->cost + 1e-9) << "drop " << drop;
    const opt::Bounds less_b = opt::compute_bounds(less);
    EXPECT_LE(less_b.demand, full_b.demand + 1e-9);
    EXPECT_LE(less_b.span, full_b.span + 1e-9);
    EXPECT_LE(less_b.ceil_integral, full_b.ceil_integral + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Monotonicity,
                         ::testing::Range<std::uint64_t>(0, 6));

class TimeScaling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeScaling, ScalingTimestampsScalesEveryTimeQuantity) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 10;
  cfg.log2_mu = 4;
  cfg.horizon = 10.0;
  const Instance in = workloads::make_general_random(cfg, rng);
  const double scale = 4.0;  // power of two: exact in double
  Instance scaled;
  for (const Item& r : in.items())
    scaled.add(r.arrival * scale, r.departure * scale, r.size);
  scaled.finalize();

  const opt::Bounds a = opt::compute_bounds(in);
  const opt::Bounds b = opt::compute_bounds(scaled);
  EXPECT_NEAR(b.demand, scale * a.demand, 1e-9);
  EXPECT_NEAR(b.span, scale * a.span, 1e-9);
  EXPECT_NEAR(b.ceil_integral, scale * a.ceil_integral, 1e-9);

  const auto r1 = opt::exact_opt_repacking(in);
  const auto r2 = opt::exact_opt_repacking(scaled);
  ASSERT_TRUE(r1 && r2);
  EXPECT_NEAR(r2->cost, scale * r1->cost, 1e-9);
  // mu is scale-invariant.
  EXPECT_NEAR(scaled.mu(), in.mu(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeScaling,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace cdbp
