// Paper-level integration claims: the orderings and growth behaviours
// Table 1 predicts, in miniature (full sweeps live in bench/).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "adversary/lower_bound.h"
#include "algos/any_fit.h"
#include "algos/cdff.h"
#include "algos/classify.h"
#include "algos/hybrid.h"
#include "analysis/ratio.h"
#include "analysis/stats.h"
#include "core/session.h"
#include "core/simulator.h"
#include "opt/bounds.h"
#include "test_util.h"
#include "workloads/aligned_random.h"
#include "workloads/binary_input.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

double mean_ratio_vs_lower(Algorithm& algo,
                           const std::vector<Instance>& instances) {
  std::vector<double> ratios;
  for (const Instance& in : instances) {
    ratios.push_back(
        analysis::measure_ratio(in, algo, /*tight_upper=*/false)
            .ratio_vs_lower());
  }
  return analysis::summarize(ratios).mean;
}

TEST(PaperClaims, HaBeatsFirstFitOnGeometricBursts) {
  // The burst family (the sigma*-like shape) is where First-Fit's lack of
  // duration awareness costs it; HA's CD bins contain the damage.
  std::vector<Instance> instances;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    std::mt19937_64 rng(seed);
    workloads::GeneralConfig cfg;
    cfg.shape = workloads::GeneralShape::kGeometricBursts;
    cfg.log2_mu = 12;
    cfg.target_items = 40 * (cfg.log2_mu + 1);
    cfg.horizon = 64.0;
    instances.push_back(workloads::make_general_random(cfg, rng));
  }
  algos::Hybrid ha;
  algos::FirstFit ff;
  const double r_ha = mean_ratio_vs_lower(ha, instances);
  const double r_ff = mean_ratio_vs_lower(ff, instances);
  EXPECT_LT(r_ha, r_ff);
}

TEST(PaperClaims, HaBeatsNaiveClassifyOnPersistentLadders) {
  // The workload where pure classify-by-duration earns its Omega(log mu)
  // reputation: one tiny item of every duration class alive at all times
  // (the binary input, viewed as a general input). Classify keeps ~log mu
  // near-empty bins open forever; HA's GN pool absorbs them all.
  const std::vector<Instance> instances = {workloads::make_binary_input(10)};
  algos::Hybrid ha;
  algos::ClassifyByDuration cbd(2.0);
  const double r_ha = mean_ratio_vs_lower(ha, instances);
  const double r_cbd = mean_ratio_vs_lower(cbd, instances);
  EXPECT_LT(2.0 * r_ha, r_cbd);  // not just better: decisively better
}

TEST(PaperClaims, CdffNearOptimalOnBinaryInputs) {
  // Proposition 5.3 at work: CDFF(sigma_mu)/OPT <= 2 log log mu + 1,
  // far below log mu for already-moderate mu.
  const int n = 10;
  const Instance in = workloads::make_binary_input(n);
  algos::Cdff cdff;
  const auto m = analysis::measure_ratio(in, cdff, /*tight_upper=*/false);
  EXPECT_LE(m.ratio_vs_lower(),
            2.0 * std::log2(static_cast<double>(n)) + 1.0 + 1e-9);
}

TEST(PaperClaims, CdffBeatsClassifyOnBinaryInputs) {
  // On sigma_mu, static classify keeps one bin per duration class open
  // nearly all the time (~log mu), while CDFF's dynamic rows share
  // (~log log mu).
  const int n = 10;
  const Instance in = workloads::make_binary_input(n);
  algos::Cdff cdff;
  algos::ClassifyByDuration cbd(2.0);
  const Cost c_cdff = run_cost(in, cdff);
  const Cost c_cbd = run_cost(in, cbd);
  EXPECT_LT(c_cdff, 0.7 * c_cbd);
}

TEST(PaperClaims, CdffRatioGrowsMuchSlowerThanClassify) {
  // Ratio growth from mu = 2^6 to mu = 2^14: classify roughly doubles
  // (log mu: 6 -> 14), CDFF barely moves (log log mu: 2.6 -> 3.8).
  auto ratio_at = [](int n, Algorithm& algo) {
    const Instance in = workloads::make_binary_input(n);
    return analysis::measure_ratio(in, algo, /*tight_upper=*/false)
        .ratio_vs_lower();
  };
  algos::Cdff cdff;
  algos::ClassifyByDuration cbd(2.0);
  const double cdff_growth = ratio_at(14, cdff) - ratio_at(6, cdff);
  const double cbd_growth = ratio_at(14, cbd) - ratio_at(6, cbd);
  EXPECT_LT(cdff_growth, cbd_growth);
  EXPECT_LT(cdff_growth, 1.5);  // log log barely moves
  EXPECT_GT(cbd_growth, 3.0);   // log mu adds ~8 bins' worth
}

TEST(PaperClaims, AdversaryForcesGrowthOnHaToo) {
  // Theorem 4.3 applies to ANY online algorithm, including HA: the forced
  // certified ratio grows from n = 4 to n = 16.
  auto forced = [](int n) {
    algos::Hybrid ha;
    adversary::AdversaryConfig cfg;
    cfg.n = n;
    cfg.rounds = 40;
    const auto out = adversary::run_lower_bound_adversary(cfg, ha);
    return analysis::measure_ratio_with_cost(out.instance, "HA",
                                             out.online_cost)
        .ratio_vs_upper();
  };
  EXPECT_GT(forced(16), forced(4));
}

TEST(PaperClaims, Lemma33GnBoundHoldsOnRandomInputs) {
  // Run HA interactively over random mixes and check GN_t <= 2 + 4 sqrt(log
  // mu) at every arrival.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    std::mt19937_64 rng(seed);
    workloads::GeneralConfig cfg;
    cfg.log2_mu = 10;
    cfg.target_items = 300;
    const Instance in = workloads::make_general_random(cfg, rng);
    algos::Hybrid ha;
    InteractiveSession session(ha);
    const double bound = 2.0 + 4.0 * std::sqrt(10.0);
    for (const Item& r : in.items()) {
      session.offer(r.arrival, r.departure, r.size);
      EXPECT_LE(static_cast<double>(ha.gn_open_count()), bound)
          << "seed " << seed;
    }
    session.finish();
  }
}

TEST(PaperClaims, Table1OrderingOnAlignedInputs) {
  // On aligned inputs CDFF should (on average) beat naive classify.
  std::vector<double> cdff_ratios, cbd_ratios;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    std::mt19937_64 rng(seed);
    workloads::AlignedConfig cfg;
    cfg.n = 10;
    cfg.max_bucket = 10;
    cfg.arrivals_per_slot = 0.7;
    cfg.size_min = 0.02;
    cfg.size_max = 0.15;
    const Instance in = workloads::make_aligned_random(cfg, rng);
    algos::Cdff cdff;
    algos::ClassifyByDuration cbd(2.0);
    cdff_ratios.push_back(
        analysis::measure_ratio(in, cdff, false).ratio_vs_lower());
    cbd_ratios.push_back(
        analysis::measure_ratio(in, cbd, false).ratio_vs_lower());
  }
  EXPECT_LT(analysis::summarize(cdff_ratios).mean,
            analysis::summarize(cbd_ratios).mean);
}

}  // namespace
}  // namespace cdbp
