// Deep property tests of the paper's two key amortization lemmas, checked
// on random inputs. These are the load-accounting facts the competitive
// analysis stands on; validating them end-to-end exercises the algorithms,
// the reduction, and the type arithmetic together.
//
//  * Lemma 3.5 (machinery): with k_t = HA's open CD bins at time t and
//    L = the largest duration class in play, the *reduced* input sigma'
//    carries active load S_t(sigma') >= k_t / (4 sqrt(L)).
//  * Lemma 5.12: if CDFF has k open bins in a row at t^+, the items ever
//    packed into that row that are active at t^+ in sigma' carry load
//    >= (k - 1) / 2.
#include <cmath>
#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

#include "algos/cdff.h"
#include "algos/hybrid.h"
#include "core/session.h"
#include "opt/reduction.h"
#include "test_util.h"
#include "workloads/aligned_random.h"
#include "workloads/binary_input.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

class Lemma35Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma35Property, ReducedLoadSupportsCdBins) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 250;
  cfg.log2_mu = 8;
  cfg.horizon = 96.0;
  cfg.shape = GetParam() % 2 == 0 ? workloads::GeneralShape::kLogUniform
                                  : workloads::GeneralShape::kGeometricBursts;
  const Instance in = workloads::make_general_random(cfg, rng);

  int max_class = 1;
  for (const Item& r : in.items())
    max_class = std::max(max_class, duration_class(r.length()));
  const double denom = 4.0 * std::sqrt(static_cast<double>(max_class));

  // Reduced departures, per item id (ids survive apply_reduction's stable
  // finalize because arrivals are unchanged).
  const Instance reduced = opt::apply_reduction(in);

  algos::Hybrid ha;
  InteractiveSession session(ha);
  for (const Item& r : in.items()) {
    session.offer(r.arrival, r.departure, r.size);
    const Time t = r.arrival;
    // S_t(sigma') over items that have arrived so far.
    double load = 0.0;
    for (ItemId id = 0; id <= r.id; ++id) {
      const Item& red = reduced[static_cast<std::size_t>(id)];
      if (red.departure > t) load += red.size;
    }
    const double k_t = static_cast<double>(ha.cd_open_count());
    EXPECT_GE(load + 1e-9, k_t / denom)
        << "seed " << GetParam() << " item " << r.id << " t=" << t;
  }
  session.finish();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma35Property,
                         ::testing::Range<std::uint64_t>(0, 10));

struct RowLogEntry {
  Load size;
  Time reduced_departure;
};

class Lemma512Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma512Property, RowLoadSupportsRowBins) {
  std::mt19937_64 rng(GetParam());
  workloads::AlignedConfig cfg;
  cfg.n = 7;
  cfg.max_bucket = 7;
  cfg.arrivals_per_slot = 1.4;
  cfg.size_min = 0.05;
  cfg.size_max = 0.6;
  cfg.seed_full_length_item = true;  // single segment
  const Instance in = workloads::make_aligned_random(cfg, rng);

  algos::Cdff cdff;
  InteractiveSession session(cdff);
  std::unordered_map<int, std::vector<RowLogEntry>> row_log;

  std::size_t next = 0;
  const std::vector<Item>& items = in.items();
  while (next < items.size()) {
    const Time t = items[next].arrival;
    while (next < items.size() && items[next].arrival == t) {
      const Item& r = items[next];
      const BinId bin = session.offer(r.arrival, r.departure, r.size);
      row_log[cdff.row_of(bin)].push_back(
          RowLogEntry{r.size, opt::reduced_departure(r)});
      ++next;
    }
    ASSERT_EQ(cdff.segment_count(), 1u) << "test assumes one segment";
    // Check every nonempty row at t^+.
    for (const auto& [delta, log] : row_log) {
      const std::size_t k = cdff.row_bins(delta).size();
      if (k < 2) continue;  // k <= 1 is trivial
      double load = 0.0;
      for (const RowLogEntry& e : log)
        if (e.reduced_departure > t) load += e.size;
      EXPECT_GE(load + 1e-9, static_cast<double>(k - 1) / 2.0)
          << "seed " << GetParam() << " t=" << t << " row " << delta
          << " k=" << k;
    }
  }
  session.finish();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma512Property,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Lemma512, HoldsOnBinaryInputsTrivially) {
  // In sigma_mu no row ever has two open bins (Lemma 5.5), so the k >= 2
  // case never fires — assert that premise itself.
  const Instance in = workloads::make_binary_input(8);
  algos::Cdff cdff;
  InteractiveSession session(cdff);
  for (const Item& r : in.items()) {
    session.offer(r.arrival, r.departure, r.size);
    for (int delta = 0; delta <= 8; ++delta)
      EXPECT_LE(cdff.row_bins(delta).size(), 1u);
  }
  session.finish();
}

}  // namespace
}  // namespace cdbp
