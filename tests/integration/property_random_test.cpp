// Cross-module property suite: every online algorithm, on every workload
// shape, across seeds, must produce a valid packing whose cost dominates
// the certified OPT bounds — and on tiny instances, the exact OPT.
#include <random>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/validation.h"
#include "opt/bounds.h"
#include "opt/exact.h"
#include "opt/offline_ffd.h"
#include "opt/repack.h"
#include "test_util.h"
#include "workloads/aligned_random.h"
#include "workloads/binary_input.h"
#include "workloads/cloud_gaming.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

struct PropertyCase {
  std::string workload;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.workload + "_seed" + std::to_string(info.param.seed);
}

Instance build_workload(const std::string& kind, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (kind == "general") {
    workloads::GeneralConfig cfg;
    cfg.target_items = 150;
    cfg.log2_mu = 6;
    return workloads::make_general_random(cfg, rng);
  }
  if (kind == "bursts") {
    workloads::GeneralConfig cfg;
    cfg.shape = workloads::GeneralShape::kGeometricBursts;
    cfg.target_items = 150;
    cfg.log2_mu = 7;
    return workloads::make_general_random(cfg, rng);
  }
  if (kind == "twophase") {
    workloads::GeneralConfig cfg;
    cfg.shape = workloads::GeneralShape::kTwoPhase;
    cfg.target_items = 120;
    cfg.log2_mu = 5;
    return workloads::make_general_random(cfg, rng);
  }
  if (kind == "aligned") {
    workloads::AlignedConfig cfg;
    cfg.n = 6;
    cfg.max_bucket = 6;
    cfg.arrivals_per_slot = 1.0;
    return workloads::make_aligned_random(cfg, rng);
  }
  if (kind == "binary") {
    return workloads::make_binary_input(3 + static_cast<int>(seed % 4));
  }
  if (kind == "cloud") {
    workloads::CloudGamingConfig cfg;
    cfg.days = 0.15;
    return workloads::make_cloud_gaming(cfg, rng);
  }
  throw std::invalid_argument("unknown workload kind " + kind);
}

class AllAlgosAllWorkloads : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AllAlgosAllWorkloads, ValidPackingAndBoundOrdering) {
  const PropertyCase& pc = GetParam();
  const Instance in = build_workload(pc.workload, pc.seed);
  ASSERT_GT(in.size(), 0u);

  const opt::Bounds bounds = opt::compute_bounds(in);
  const double repack = opt::repack_witness(in).cost;
  const double ffd = opt::offline_ffd_by_length(in).cost;

  // Bound lattice: LB <= repack <= 2*ceil-int; LB <= ffd.
  EXPECT_GE(repack, bounds.lower() - 1e-6);
  EXPECT_LE(repack, bounds.upper_ceil() + 1e-6);
  EXPECT_GE(ffd, bounds.lower() - 1e-6);

  const bool aligned = in.is_aligned();
  const auto factories =
      aligned ? testutil::aligned_factories() : testutil::online_factories();
  for (const auto& f : factories) {
    auto algo = f.make();
    const RunResult r = Simulator{}.run(in, *algo);
    const ValidationReport rep = validate_run(in, r);
    EXPECT_TRUE(rep.ok())
        << f.name << " on " << pc.workload << "/" << pc.seed << ": "
        << rep.to_string();
    // Online >= all OPT lower bounds.
    EXPECT_GE(r.cost, bounds.lower() - 1e-6)
        << f.name << " on " << pc.workload << "/" << pc.seed;
    // Cost equals the integral of the open-bin profile.
    EXPECT_NEAR(r.cost, r.open_bins.integral(),
                1e-6 * (1.0 + r.cost));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgosAllWorkloads,
    ::testing::Values(
        PropertyCase{"general", 1}, PropertyCase{"general", 2},
        PropertyCase{"general", 3}, PropertyCase{"bursts", 1},
        PropertyCase{"bursts", 2}, PropertyCase{"twophase", 1},
        PropertyCase{"twophase", 2}, PropertyCase{"aligned", 1},
        PropertyCase{"aligned", 2}, PropertyCase{"aligned", 3},
        PropertyCase{"binary", 1}, PropertyCase{"binary", 2},
        PropertyCase{"cloud", 1}, PropertyCase{"cloud", 2}),
    case_name);

class TinyInstancesVsExact : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TinyInstancesVsExact, NoAlgorithmBeatsExactOpt) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 8;
  cfg.log2_mu = 3;
  cfg.horizon = 8.0;
  cfg.size_max = 0.8;
  const Instance in = workloads::make_general_random(cfg, rng);
  const auto exact = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(exact.has_value());
  EXPECT_GE(exact->cost, opt::compute_bounds(in).lower() - 1e-9);
  for (const auto& f : testutil::online_factories()) {
    auto algo = f.make();
    EXPECT_GE(run_cost(in, *algo) + 1e-9, exact->cost) << f.name;
  }
  // The repacking witness may beat OPT_NR (repacking is stronger), but
  // never the lower bound.
  EXPECT_GE(opt::repack_witness(in).cost,
            opt::compute_bounds(in).lower() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyInstancesVsExact,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Determinism, RepeatedRunsIdentical) {
  std::mt19937_64 rng(77);
  workloads::GeneralConfig cfg;
  cfg.target_items = 200;
  cfg.log2_mu = 8;
  const Instance in = workloads::make_general_random(cfg, rng);
  for (const auto& f : testutil::online_factories()) {
    auto a1 = f.make();
    auto a2 = f.make();
    const RunResult r1 = Simulator{}.run(in, *a1);
    const RunResult r2 = Simulator{}.run(in, *a2);
    EXPECT_DOUBLE_EQ(r1.cost, r2.cost) << f.name;
    EXPECT_EQ(r1.bins_opened, r2.bins_opened) << f.name;
    ASSERT_EQ(r1.placements.size(), r2.placements.size());
    for (std::size_t k = 0; k < r1.placements.size(); ++k)
      EXPECT_EQ(r1.placements[k].bin, r2.placements[k].bin) << f.name;
  }
}

}  // namespace
}  // namespace cdbp
