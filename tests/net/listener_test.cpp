// End-to-end tests for the socket front end: a real NetListener over
// loopback, driven either by the load-generator client (happy paths) or by
// a raw blocking socket (hostile bytes, protocol-level error contracts).
#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "net/client.h"
#include "net/protocol.h"
#include "serve/request_stream.h"
#include "serve/shard_router.h"

namespace cdbp::net {
namespace {

namespace fs = std::filesystem;

/// Blocking loopback connection speaking raw bytes — deliberately NOT the
/// production client, so tests can send malformed and hostile input.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << std::strerror(errno);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  void send_bytes(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(w, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(w);
    }
  }

  void send_magic() { send_bytes(std::string(kMagic, kMagicLen)); }

  void send_request(const Request& req) {
    std::string wire;
    encode_request(req, wire);
    send_bytes(wire);
  }

  void hello(const std::string& tenant) {
    Request req;
    req.type = MsgType::kHello;
    req.tenant = tenant;
    send_request(req);
  }

  void offer(std::uint64_t id, double arrival, double departure, double size) {
    Request req;
    req.type = MsgType::kOffer;
    req.id = id;
    req.arrival = arrival;
    req.departure = departure;
    req.size = size;
    send_request(req);
  }

  /// Next framed response, or nullopt on timeout/EOF/corruption.
  std::optional<Response> recv_response(int timeout_ms = 5000) {
    std::string payload;
    for (;;) {
      const DecodeStatus st = decoder_.next(payload);
      if (st == DecodeStatus::kBad) return std::nullopt;
      if (st == DecodeStatus::kFrame) {
        std::string why;
        return parse_response(payload, why);
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr <= 0) return std::nullopt;
      char buf[4096];
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) return std::nullopt;  // EOF or error
      decoder_.feed(buf, static_cast<std::size_t>(r));
    }
  }

  /// True once the server hangs up (orderly EOF within the timeout).
  bool wait_eof(int timeout_ms = 5000) {
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr <= 0) return false;
      char buf[4096];
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r == 0) return true;
      if (r < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

class NetListenerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_net_test_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    listener_.reset();
    router_.reset();
    fs::remove_all(dir_);
  }

  /// Builds router + listener; tweak the configs via the callback.
  void start(std::size_t shards,
             const std::function<void(serve::RouterConfig&, ListenerConfig&)>&
                 tweak = {}) {
    serve::RouterConfig rc;
    rc.wal_dir = dir_.string();
    rc.shards = shards;
    rc.fsync = serve::FsyncPolicy::kNone;
    ListenerConfig lc;
    lc.loops = 2;
    if (tweak) tweak(rc, lc);
    router_ = std::make_unique<serve::ShardRouter>(
        rc, [] { return cli::make_algorithm("ff"); }, "ff");
    listener_ = std::make_unique<NetListener>(lc, *router_);
  }

  void finish() {
    listener_->begin_drain();
    EXPECT_TRUE(listener_->drain(10000));
    counters_ = listener_->counters();
    listener_->stop();
    router_->stop();
  }

  fs::path dir_;
  std::unique_ptr<serve::ShardRouter> router_;
  std::unique_ptr<NetListener> listener_;
  ListenerCounters counters_;
};

TEST_F(NetListenerTest, LoadGeneratorRoundTripAllApplied) {
  start(4);
  const std::vector<serve::ServeRequest> stream =
      serve::generate_stream(serve::StreamGenConfig{200, 8, 11, 5, 64.0});
  ClientConfig cc;
  cc.port = listener_->port();
  const ClientReport rep = run_load(cc, stream);
  EXPECT_EQ(rep.applied, stream.size());
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.errored, 0u);
  EXPECT_EQ(rep.conns_failed, 0u);
  EXPECT_FALSE(rep.timed_out);
  finish();
  EXPECT_EQ(counters_.accepted, 8u);
  EXPECT_EQ(counters_.offers_applied, stream.size());
  EXPECT_EQ(counters_.protocol_errors, 0u);
  EXPECT_GT(counters_.bytes_in, 0u);
  EXPECT_GT(counters_.bytes_out, 0u);
  EXPECT_EQ(router_->results().size(), stream.size());
}

TEST_F(NetListenerTest, PollFallbackServesIdentically) {
  start(2, [](serve::RouterConfig&, ListenerConfig& lc) {
    lc.force_poll = true;
    lc.loops = 1;
  });
  const std::vector<serve::ServeRequest> stream =
      serve::generate_stream(serve::StreamGenConfig{80, 4, 5, 5, 64.0});
  ClientConfig cc;
  cc.port = listener_->port();
  const ClientReport rep = run_load(cc, stream);
  EXPECT_EQ(rep.applied, stream.size());
  EXPECT_EQ(rep.lost, 0u);
  finish();
  EXPECT_EQ(counters_.offers_applied, stream.size());
}

TEST_F(NetListenerTest, BadMagicGetsTypedErrorThenClose) {
  start(1);
  RawConn conn(listener_->port());
  conn.send_bytes("HTTP/1.1");
  const std::optional<Response> resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->code, ErrCode::kBadMagic);
  EXPECT_TRUE(conn.wait_eof());
  finish();
  EXPECT_EQ(counters_.protocol_errors, 1u);
}

TEST_F(NetListenerTest, RequestBeforeHelloIsRefused) {
  start(1);
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.offer(1, 0.0, 1.0, 0.5);
  const std::optional<Response> resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->code, ErrCode::kNoHello);
  EXPECT_TRUE(conn.wait_eof());
  finish();
}

TEST_F(NetListenerTest, HostileTenantIdsAreGatedAtTheProtocolLayer) {
  start(1);
  {  // zero-length tenant: typed error frame, then hangup
    RawConn conn(listener_->port());
    conn.send_magic();
    conn.hello("");
    const std::optional<Response> resp = conn.recv_response();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->type, MsgType::kError);
    EXPECT_EQ(resp->code, ErrCode::kBadTenant);
    EXPECT_TRUE(conn.wait_eof());
  }
  {  // oversized tenant (default cap is 64 bytes)
    RawConn conn(listener_->port());
    conn.send_magic();
    conn.hello(std::string(65, 'a'));
    const std::optional<Response> resp = conn.recv_response();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->type, MsgType::kError);
    EXPECT_EQ(resp->code, ErrCode::kBadTenant);
    EXPECT_TRUE(conn.wait_eof());
  }
  {  // hostile bytes inside the cap: rejected outright, never sanitized
    // into an aliasing identity ("a/b" and "a_b" must not share a quota
    // bucket, shard, or dedup space)
    RawConn conn(listener_->port());
    conn.send_magic();
    conn.hello("t\x01!/x\xFF{}");
    const std::optional<Response> resp = conn.recv_response();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->type, MsgType::kError);
    EXPECT_EQ(resp->code, ErrCode::kBadTenant);
    EXPECT_TRUE(conn.wait_eof());
  }
  {  // the full allowed charset serves fine
    RawConn conn(listener_->port());
    conn.send_magic();
    conn.hello("Tenant_0.9-ok");
    const std::optional<Response> hello = conn.recv_response();
    ASSERT_TRUE(hello.has_value());
    ASSERT_EQ(hello->type, MsgType::kAck);
    EXPECT_EQ(hello->ack, AckStatus::kHello);
    conn.offer(1, 0.0, 2.0, 0.25);
    const std::optional<Response> ack = conn.recv_response();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->type, MsgType::kAck);
    EXPECT_EQ(ack->ack, AckStatus::kApplied);
  }
  finish();
  // Only the validated raw id reaches the router.
  ASSERT_EQ(router_->results().size(), 1u);
  EXPECT_EQ(router_->results().front().tenant, "Tenant_0.9-ok");
}

TEST_F(NetListenerTest, TenantsSharingAShardMayReuseOfferIds) {
  // One shard, so both tenants land on it. Their id spaces are
  // uncoordinated and overlap exactly; dedup and inflight tracking key by
  // (tenant, id), so every offer must be applied — no spurious kDuplicate
  // (inflight collision) and no silent kSkipped (shard-global high-water
  // mark swallowing tenant B's ids after tenant A pushed larger ones).
  start(1);
  RawConn a(listener_->port());
  a.send_magic();
  a.hello("tenant-a");
  ASSERT_TRUE(a.recv_response().has_value());
  RawConn b(listener_->port());
  b.send_magic();
  b.hello("tenant-b");
  ASSERT_TRUE(b.recv_response().has_value());

  // A runs its ids up to 3 first; B then starts from 1.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    a.offer(id, 0.0, 1.0, 0.1);
    const std::optional<Response> ack = a.recv_response();
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, MsgType::kAck) << "tenant-a id " << id;
    EXPECT_EQ(ack->ack, AckStatus::kApplied);
  }
  for (std::uint64_t id = 1; id <= 3; ++id) {
    b.offer(id, 0.0, 1.0, 0.1);
    const std::optional<Response> ack = b.recv_response();
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, MsgType::kAck) << "tenant-b id " << id;
    EXPECT_EQ(ack->ack, AckStatus::kApplied)
        << "tenant-b id " << id << " must not collide with tenant-a's ids";
  }
  finish();
  EXPECT_EQ(counters_.offers_applied, 6u);
  EXPECT_EQ(counters_.offers_skipped, 0u);
  EXPECT_EQ(counters_.protocol_errors, 0u);
  EXPECT_EQ(router_->results().size(), 6u);
}

TEST_F(NetListenerTest, CorruptFrameClosesWithBadFrame) {
  start(1);
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.hello("t0");
  ASSERT_TRUE(conn.recv_response().has_value());  // hello ack
  Request req;
  req.type = MsgType::kPing;
  req.id = 1;
  std::string wire;
  encode_request(req, wire);
  wire[wire.size() - 1] = static_cast<char>(wire[wire.size() - 1] ^ 0xFF);
  conn.send_bytes(wire);
  const std::optional<Response> resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->code, ErrCode::kBadFrame);
  EXPECT_TRUE(conn.wait_eof());
  finish();
}

TEST_F(NetListenerTest, QuotaExhaustionIsTypedAndTheConnectionSurvives) {
  start(1, [](serve::RouterConfig&, ListenerConfig& lc) {
    lc.quota_rate = 0.001;  // effectively: the burst is all you get
    lc.quota_burst = 1.0;
  });
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.hello("greedy");
  ASSERT_TRUE(conn.recv_response().has_value());

  conn.offer(1, 0.0, 1.0, 0.1);
  const std::optional<Response> first = conn.recv_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kAck);
  EXPECT_EQ(first->ack, AckStatus::kApplied);

  conn.offer(2, 0.0, 1.0, 0.1);
  const std::optional<Response> second = conn.recv_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kError);
  EXPECT_EQ(second->code, ErrCode::kQuota);
  EXPECT_EQ(second->id, 2u);

  // The contract: quota errors do NOT close. The same connection keeps
  // answering other request types.
  Request ping;
  ping.type = MsgType::kPing;
  ping.id = 3;
  conn.send_request(ping);
  const std::optional<Response> pong = conn.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, MsgType::kPong);
  EXPECT_EQ(pong->id, 3u);
  finish();
  EXPECT_EQ(counters_.quota_rejected, 1u);
  EXPECT_EQ(counters_.offers_applied, 1u);
}

TEST_F(NetListenerTest, RejectAdmissionMapsFullQueueToBackpressure) {
  start(1, [](serve::RouterConfig& rc, ListenerConfig& lc) {
    rc.queue_capacity = 2;
    rc.admission = serve::AdmissionPolicy::kReject;
    rc.worker_delay_us = 3000;  // slow consumer: the queue must fill
    lc.admission = serve::AdmissionPolicy::kReject;
  });
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.hello("burst");
  ASSERT_TRUE(conn.recv_response().has_value());

  constexpr std::uint64_t kOffers = 32;
  for (std::uint64_t id = 1; id <= kOffers; ++id)
    conn.offer(id, 0.0, 1.0, 0.01);
  std::uint64_t acked = 0, backpressured = 0;
  for (std::uint64_t i = 0; i < kOffers; ++i) {
    const std::optional<Response> resp = conn.recv_response(10000);
    ASSERT_TRUE(resp.has_value()) << "offer " << i << " got no response";
    if (resp->type == MsgType::kAck) {
      EXPECT_EQ(resp->ack, AckStatus::kApplied);
      ++acked;
    } else {
      ASSERT_EQ(resp->type, MsgType::kError);
      EXPECT_EQ(resp->code, ErrCode::kBackpressure);
      ++backpressured;
    }
  }
  EXPECT_EQ(acked + backpressured, kOffers) << "every offer must terminate";
  EXPECT_GT(backpressured, 0u) << "a 2-deep queue cannot absorb 32 offers";
  finish();
  EXPECT_EQ(counters_.backpressured, backpressured);
  EXPECT_EQ(counters_.offers_applied, acked);
}

TEST_F(NetListenerTest, TimeOrderViolationsAreTyped) {
  start(1);
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.hello("t0");
  ASSERT_TRUE(conn.recv_response().has_value());

  conn.offer(5, 1.0, 2.0, 0.1);
  ASSERT_TRUE(conn.recv_response().has_value());  // applied
  conn.offer(3, 1.5, 2.5, 0.1);                   // id going backwards
  const std::optional<Response> resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->code, ErrCode::kTimeOrder);

  Request adv;  // still usable: advance the clock, then offer below it
  adv.type = MsgType::kAdvance;
  adv.id = 6;
  adv.time = 5.0;
  conn.send_request(adv);
  const std::optional<Response> advAck = conn.recv_response();
  ASSERT_TRUE(advAck.has_value());
  EXPECT_EQ(advAck->type, MsgType::kAck);
  EXPECT_EQ(advAck->ack, AckStatus::kAdvance);
  conn.offer(7, 4.0, 6.0, 0.1);  // arrival below the advance clock
  const std::optional<Response> stale = conn.recv_response();
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->type, MsgType::kError);
  EXPECT_EQ(stale->code, ErrCode::kTimeOrder);
  finish();
}

TEST_F(NetListenerTest, DepartStatsAndPingRoundTrip) {
  start(1);
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.hello("t0");
  ASSERT_TRUE(conn.recv_response().has_value());
  conn.offer(1, 0.0, 4.0, 0.3);
  ASSERT_TRUE(conn.recv_response().has_value());

  Request depart;
  depart.type = MsgType::kDepart;
  depart.id = 1;
  depart.time = 4.0;
  conn.send_request(depart);
  std::optional<Response> resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kAck);
  EXPECT_EQ(resp->ack, AckStatus::kDepart);

  depart.id = 99;  // never offered
  conn.send_request(depart);
  resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->code, ErrCode::kUnknownId);

  Request stats;
  stats.type = MsgType::kStats;
  stats.id = 2;
  conn.send_request(stats);
  resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kStatsReply);
  EXPECT_NE(resp->text.find("accepted"), std::string::npos);
  finish();
}

TEST_F(NetListenerTest, DrainAnswersNewOffersWithShutdown) {
  start(1);
  RawConn conn(listener_->port());
  conn.send_magic();
  conn.hello("t0");
  ASSERT_TRUE(conn.recv_response().has_value());
  conn.offer(1, 0.0, 1.0, 0.1);
  ASSERT_TRUE(conn.recv_response().has_value());

  listener_->begin_drain();
  conn.offer(2, 0.0, 1.0, 0.1);
  const std::optional<Response> resp = conn.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kError);
  EXPECT_EQ(resp->code, ErrCode::kShutdown);
  finish();
  EXPECT_EQ(counters_.offers_applied, 1u);
}

TEST_F(NetListenerTest, MiniSoakManyTenantsZeroLoss) {
  start(4);
  const std::vector<serve::ServeRequest> stream =
      serve::generate_stream(serve::StreamGenConfig{1024, 128, 3, 5, 256.0});
  raise_nofile_limit(256 + 64);
  ClientConfig cc;
  cc.port = listener_->port();
  cc.timeout_ms = 60000;
  const ClientReport rep = run_load(cc, stream);
  EXPECT_EQ(rep.conns_opened, 128u);
  EXPECT_EQ(rep.conns_failed, 0u);
  EXPECT_EQ(rep.applied, stream.size());
  EXPECT_EQ(rep.lost, 0u);
  finish();
  EXPECT_EQ(counters_.accepted, 128u);
  EXPECT_EQ(counters_.active, 0u);
  EXPECT_EQ(counters_.closed, 128u);
  EXPECT_EQ(counters_.offers_applied, stream.size());
  EXPECT_EQ(router_->results().size(), stream.size());
}

}  // namespace
}  // namespace cdbp::net
