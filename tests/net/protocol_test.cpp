#include "net/protocol.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cdbp::net {
namespace {

Request make_offer(std::uint64_t id) {
  Request req;
  req.type = MsgType::kOffer;
  req.id = id;
  req.arrival = 1.5;
  req.departure = 7.25;
  req.size = 0.375;
  return req;
}

/// Feeds one buffer and expects exactly one well-formed frame.
std::string decode_one(const std::string& wire) {
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(dec.next(payload), DecodeStatus::kFrame);
  EXPECT_EQ(dec.pending_bytes(), 0u);
  return payload;
}

TEST(NetProtocol, RequestRoundTripsEveryType) {
  std::vector<Request> reqs;
  Request hello;
  hello.type = MsgType::kHello;
  hello.tenant = "tenant-42";
  reqs.push_back(hello);
  reqs.push_back(make_offer(9));
  Request depart;
  depart.type = MsgType::kDepart;
  depart.id = 10;
  depart.time = 3.5;
  reqs.push_back(depart);
  Request advance;
  advance.type = MsgType::kAdvance;
  advance.id = 11;
  advance.time = 4.0;
  reqs.push_back(advance);
  Request stats;
  stats.type = MsgType::kStats;
  stats.id = 12;
  reqs.push_back(stats);
  Request ping;
  ping.type = MsgType::kPing;
  ping.id = 13;
  reqs.push_back(ping);

  for (const Request& req : reqs) {
    std::string wire;
    encode_request(req, wire);
    std::string why;
    const std::optional<Request> back = parse_request(decode_one(wire), why);
    ASSERT_TRUE(back.has_value()) << why;
    EXPECT_EQ(back->type, req.type);
    EXPECT_EQ(back->id, req.id);
    EXPECT_EQ(back->tenant, req.tenant);
    EXPECT_EQ(back->arrival, req.arrival);
    EXPECT_EQ(back->departure, req.departure);
    EXPECT_EQ(back->size, req.size);
    EXPECT_EQ(back->time, req.time);
  }
}

TEST(NetProtocol, ResponseRoundTripsEveryType) {
  std::vector<Response> resps;
  Response ack;
  ack.type = MsgType::kAck;
  ack.id = 5;
  ack.ack = AckStatus::kApplied;
  ack.seq = 77;
  ack.bin = 3;
  ack.shard = 2;
  resps.push_back(ack);
  Response err;
  err.type = MsgType::kError;
  err.id = 6;
  err.code = ErrCode::kQuota;
  err.text = "tenant over offer rate limit";
  resps.push_back(err);
  Response pong;
  pong.type = MsgType::kPong;
  pong.id = 7;
  resps.push_back(pong);
  Response stats;
  stats.type = MsgType::kStatsReply;
  stats.id = 8;
  stats.text = "accepted=3\nactive=1\n";
  resps.push_back(stats);

  for (const Response& resp : resps) {
    std::string wire;
    encode_response(resp, wire);
    std::string why;
    const std::optional<Response> back = parse_response(decode_one(wire), why);
    ASSERT_TRUE(back.has_value()) << why;
    EXPECT_EQ(back->type, resp.type);
    EXPECT_EQ(back->id, resp.id);
    EXPECT_EQ(back->ack, resp.ack);
    EXPECT_EQ(back->seq, resp.seq);
    EXPECT_EQ(back->bin, resp.bin);
    EXPECT_EQ(back->shard, resp.shard);
    EXPECT_EQ(back->code, resp.code);
    EXPECT_EQ(back->text, resp.text);
  }
}

TEST(NetProtocol, EveryStrictPrefixNeedsMoreBytes) {
  std::string wire;
  encode_request(make_offer(1), wire);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    std::string payload;
    EXPECT_EQ(dec.next(payload), DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes decoded a frame";
    EXPECT_EQ(dec.pending_bytes(), cut);
    // Completing the torn frame must still yield the original message.
    dec.feed(wire.data() + cut, wire.size() - cut);
    ASSERT_EQ(dec.next(payload), DecodeStatus::kFrame);
    std::string why;
    const std::optional<Request> back = parse_request(payload, why);
    ASSERT_TRUE(back.has_value()) << why;
    EXPECT_EQ(back->id, 1u);
  }
}

TEST(NetProtocol, ByteFlipAtEveryOffsetNeverYieldsTheFrame) {
  std::string wire;
  encode_request(make_offer(2), wire);
  for (std::size_t at = 0; at < wire.size(); ++at) {
    std::string bad = wire;
    bad[at] = static_cast<char>(bad[at] ^ 0x5A);
    FrameDecoder dec;
    dec.feed(bad.data(), bad.size());
    std::string payload;
    const DecodeStatus st = dec.next(payload);
    // A corrupted length waits for bytes that never come; everything else
    // trips the CRC or the size cap. Decoding a frame from flipped bytes
    // would mean the checksum is not protecting the payload.
    EXPECT_NE(st, DecodeStatus::kFrame) << "flip at offset " << at;
    if (st == DecodeStatus::kBad) {
      EXPECT_FALSE(dec.error().empty());
    }
  }
}

TEST(NetProtocol, OversizeLengthPrefixIsRejectedNotBuffered) {
  std::string wire;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  for (std::size_t i = 0; i < 4; ++i)
    wire.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  wire.append(4, '\0');  // crc placeholder — never reached
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(dec.next(payload), DecodeStatus::kBad);
  EXPECT_NE(dec.error().find("exceeds cap"), std::string::npos);
}

TEST(NetProtocol, DecoderStaysPoisonedAfterBadFrame) {
  std::string bad;
  encode_request(make_offer(3), bad);
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0xFF);
  FrameDecoder dec;
  dec.feed(bad.data(), bad.size());
  std::string payload;
  ASSERT_EQ(dec.next(payload), DecodeStatus::kBad);

  std::string good;
  encode_request(make_offer(4), good);
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(payload), DecodeStatus::kBad)
      << "a poisoned stream must never resynchronize";
}

TEST(NetProtocol, ByteAtATimeFeedRecoversEveryFrame) {
  std::string wire;
  for (std::uint64_t id = 1; id <= 5; ++id) encode_request(make_offer(id), wire);
  FrameDecoder dec;
  std::vector<std::uint64_t> ids;
  std::string payload;
  for (const char b : wire) {
    dec.feed(&b, 1);
    while (dec.next(payload) == DecodeStatus::kFrame) {
      std::string why;
      const std::optional<Request> req = parse_request(payload, why);
      ASSERT_TRUE(req.has_value()) << why;
      ids.push_back(req->id);
    }
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(NetProtocol, EmptyPayloadFrameIsRejectedAtTheFramingLayer) {
  std::string wire;
  frame_payload("", wire);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_EQ(dec.next(payload), DecodeStatus::kBad)
      << "a frame without even a type byte cannot be valid";
  EXPECT_NE(dec.error().find("empty"), std::string::npos);
}

TEST(NetProtocol, UnknownTypeAndTrailingBytesAreRejected) {
  std::string why;
  EXPECT_FALSE(parse_request(std::string(1, '\x7F'), why).has_value());

  std::string wire;
  encode_request(make_offer(6), wire);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(dec.next(payload), DecodeStatus::kFrame);
  payload.push_back('\0');
  EXPECT_FALSE(parse_request(payload, why).has_value())
      << "trailing bytes must not be ignored";
  // A response parsed as a request (and vice versa) is a type error.
  Response pong;
  pong.type = MsgType::kPong;
  std::string pw;
  encode_response(pong, pw);
  FrameDecoder dec2;
  dec2.feed(pw.data(), pw.size());
  ASSERT_EQ(dec2.next(payload), DecodeStatus::kFrame);
  EXPECT_FALSE(parse_request(payload, why).has_value());
}

TEST(NetProtocol, NonFiniteOfferFieldsAreRejected) {
  for (const double evil : {std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()}) {
    Request req = make_offer(7);
    req.departure = evil;
    std::string wire;
    encode_request(req, wire);
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::string payload;
    ASSERT_EQ(dec.next(payload), DecodeStatus::kFrame);
    std::string why;
    EXPECT_FALSE(parse_request(payload, why).has_value());
  }
}

TEST(NetProtocol, ErrorCodeTableIsStable) {
  EXPECT_TRUE(err_closes(ErrCode::kBadFrame));
  EXPECT_TRUE(err_closes(ErrCode::kBadMagic));
  EXPECT_TRUE(err_closes(ErrCode::kNoHello));
  EXPECT_TRUE(err_closes(ErrCode::kBadTenant));
  EXPECT_TRUE(err_closes(ErrCode::kTooLarge));
  EXPECT_FALSE(err_closes(ErrCode::kQuota));
  EXPECT_FALSE(err_closes(ErrCode::kBackpressure));
  EXPECT_FALSE(err_closes(ErrCode::kDegraded));
  EXPECT_FALSE(err_closes(ErrCode::kTimeOrder));
  EXPECT_FALSE(err_closes(ErrCode::kShutdown));
  EXPECT_STREQ(err_name(ErrCode::kQuota), "quota");
  EXPECT_STREQ(err_name(ErrCode::kBadMagic), "bad-magic");
}

}  // namespace
}  // namespace cdbp::net
