#include "obs/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cdbp::obs {
namespace {

// The suite tests a local registry, not MetricsRegistry::global(), so it
// cannot race with the instrumented library code exercised by other tests.

#ifdef CDBP_OBS_OFF

TEST(ObsMetrics, CompiledOutShellsAreInertNoOps) {
  MetricsRegistry reg;
  reg.counter("a").add(42);
  EXPECT_EQ(reg.counter("a").value(), 0u);
  reg.gauge("g").set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  reg.histogram("h").record(7);
  EXPECT_EQ(reg.histogram("h").snapshot().count, 0u);
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

#else

TEST(ObsMetrics, CounterBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeBasics) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("y"), &a);
}

TEST(ObsMetrics, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.add(7);
  h.record(3);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);  // the cached reference still works after reset()
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(ObsMetrics, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.record(0);   // bucket 0
  h.record(1);   // bucket 1
  h.record(2);   // bucket 2: [2, 4)
  h.record(3);   // bucket 2
  h.record(100);  // bucket 7: [64, 128)
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 5.0);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[7], 1u);
}

TEST(ObsMetrics, HistogramQuantileApproximation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q");
  for (int i = 0; i < 99; ++i) h.record(10);   // bucket 4: [8, 16)
  h.record(1000);                              // bucket 10: [512, 1024)
  const HistogramSnapshot s = h.snapshot();
  const std::uint64_t p50 = s.quantile(0.5);
  EXPECT_GE(p50, 8u);
  EXPECT_LE(p50, 16u);
  const std::uint64_t p100 = s.quantile(1.0);
  EXPECT_LE(p100, 1000u);  // clamped to observed max
  EXPECT_GE(p100, 512u);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u);  // empty -> 0
}

TEST(ObsMetrics, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(3.0);
  reg.histogram("h").record(4);
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a");
  EXPECT_EQ(s.counters[0].second, 1u);
  EXPECT_EQ(s.counters[1].first, "b");
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 3.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 1u);
}

TEST(ObsMetrics, DumpTextAndCsv) {
  MetricsRegistry reg;
  reg.counter("sim.arrivals").add(31);
  reg.gauge("ledger.open_bins").set(4.0);
  reg.histogram("pool.task_latency_us").record(100);

  std::ostringstream text;
  reg.dump_text(text);
  EXPECT_NE(text.str().find("counter sim.arrivals 31"), std::string::npos);
  EXPECT_NE(text.str().find("gauge ledger.open_bins 4"), std::string::npos);
  EXPECT_NE(text.str().find("histogram pool.task_latency_us count=1"),
            std::string::npos);

  std::ostringstream csv;
  reg.dump_csv(csv);
  EXPECT_EQ(csv.str().rfind("kind,name,count,sum,min,max,mean,p50,p99", 0),
            0u);
  EXPECT_NE(csv.str().find("counter,sim.arrivals,,31,"), std::string::npos);
}

TEST(ObsMetrics, ConcurrentAddsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c, &h]() {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, kPerThread - 1u);
}

TEST(ObsMetrics, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&reg, &seen, t]() { seen[static_cast<std::size_t>(t)] = &reg.counter("same"); });
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
}

TEST(ObsMetrics, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

#endif  // CDBP_OBS_OFF

}  // namespace
}  // namespace cdbp::obs
