#include "obs/snapshot.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace cdbp::obs {
namespace {

#ifdef CDBP_OBS_OFF

// The snapshot/render layer exists in BOTH build modes (it is pure
// arithmetic over the snapshot structs); under the kill switch instruments
// simply never fill anything in, so everything degrades to empty data.
TEST(ObsSnapshot, CompiledOutInstrumentsYieldEmptySnapshots) {
  MetricsRegistry registry;
  registry.histogram("h").record(1234);
  const HistogramSnapshot snap = registry.histogram("h").snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0u);
  const HistogramSnapshot d = delta(snap, HistogramSnapshot{});
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(merge(snap, snap).count, 0u);
  // Pure string functions are identical in both modes.
  EXPECT_EQ(sanitize_metric_label("a,b"), "a_b");
}

#else

HistogramSnapshot snap_of(const std::vector<std::uint64_t>& values) {
  Histogram h;
  for (const std::uint64_t v : values) h.record(v);
  return h.snapshot();
}

// --- quantile extraction --------------------------------------------------

TEST(ObsSnapshot, QuantileOfEmptyHistogramIsZero) {
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile(0.0), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);
}

TEST(ObsSnapshot, QuantileIsExactForSingleDistinctValue) {
  // min == max clamps interpolation: every quantile is the value itself.
  const HistogramSnapshot one = snap_of({5});
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_EQ(one.quantile(q), 5u) << "q=" << q;

  const HistogramSnapshot many = snap_of({12, 12, 12, 12});
  for (const double q : {0.0, 0.5, 1.0}) EXPECT_EQ(many.quantile(q), 12u);
}

TEST(ObsSnapshot, QuantileOfZeroBucketIsZero) {
  const HistogramSnapshot zeros = snap_of({0, 0, 0});
  EXPECT_EQ(zeros.quantile(0.5), 0u);
  EXPECT_EQ(zeros.quantile(1.0), 0u);
}

TEST(ObsSnapshot, QuantileInterpolatesWithinOneBucket) {
  // Two observations in bucket 4 ([8, 16)): rank j of n sits at fraction
  // (j - 0.5) / n, so rank 1 -> 8 + 0.25 * 8 = 10 and rank 2 -> 8 + 6 = 14.
  const HistogramSnapshot snap = snap_of({8, 15});
  EXPECT_EQ(snap.quantile(0.0), 10u);   // rank clamps up to 1
  EXPECT_EQ(snap.quantile(0.25), 10u);  // rank 1
  EXPECT_EQ(snap.quantile(1.0), 14u);   // rank 2
}

TEST(ObsSnapshot, QuantileIsBucketAccurateOnUniformData) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 100; ++v) values.push_back(v);
  const HistogramSnapshot snap = snap_of(values);
  ASSERT_EQ(snap.count, 100u);
  ASSERT_EQ(snap.min, 1u);
  ASSERT_EQ(snap.max, 100u);
  // Rank 50 lands in bucket 6 ([32, 64), 32 obs, 31 before):
  // 32 + (50 - 31 - 0.5) / 32 * 32 = 50.5, rounded half away -> 51.
  EXPECT_EQ(snap.quantile(0.5), 51u);
  // Rank 99 lands in bucket 7 ([64, 128)), whose upper half is empty: the
  // interpolated estimate overshoots and the [min, max] clamp catches it.
  EXPECT_EQ(snap.quantile(0.99), 100u);
  EXPECT_EQ(snap.quantile(1.0), 100u);
}

// --- interval (delta) subtraction -----------------------------------------

TEST(ObsSnapshot, DeltaAgainstEmptyBaselineIsExact) {
  const HistogramSnapshot cur = snap_of({7, 9});
  const HistogramSnapshot d = delta(cur, HistogramSnapshot{});
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 16u);
  EXPECT_EQ(d.min, 7u);  // nothing subtracted: lifetime bounds are exact
  EXPECT_EQ(d.max, 9u);
}

TEST(ObsSnapshot, DeltaRederivesMinMaxFromIntervalBuckets) {
  Histogram h;
  h.record(1);
  h.record(2);
  h.record(3);
  const HistogramSnapshot before = h.snapshot();
  h.record(4);
  h.record(5);
  const HistogramSnapshot d = delta(h.snapshot(), before);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 9u);
  // Both interval values live in bucket 3 ([4, 8)): the interval min is the
  // bucket floor (the lifetime min of 1 must NOT leak in), the interval max
  // clamps to the lifetime max.
  EXPECT_EQ(d.min, 4u);
  EXPECT_EQ(d.max, 5u);
  EXPECT_GE(d.quantile(0.5), 4u);
  EXPECT_LE(d.quantile(0.5), 5u);
}

TEST(ObsSnapshot, DeltaBoundsClampToLifetimeExtremes) {
  Histogram h;
  h.record(1);
  const HistogramSnapshot before = h.snapshot();
  h.record(1000);
  const HistogramSnapshot d = delta(h.snapshot(), before);
  EXPECT_EQ(d.count, 1u);
  // 1000 is in bucket 10 ([512, 1024)): floor 512 from the bucket, ceiling
  // 1000 from the lifetime max (the bucket's 1023 would overstate it).
  EXPECT_EQ(d.min, 512u);
  EXPECT_EQ(d.max, 1000u);
}

TEST(ObsSnapshot, DeltaCountMovedWithoutBucketFallsBack) {
  // Weak consistency: a concurrent snapshot can see the count incremented
  // before any bucket. The delta must not invent bounds — it falls back to
  // the lifetime min/max.
  HistogramSnapshot cur = snap_of({10, 20});
  HistogramSnapshot earlier = cur;
  earlier.count -= 1;  // count moved, buckets identical
  const HistogramSnapshot d = delta(cur, earlier);
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.min, cur.min);
  EXPECT_EQ(d.max, cur.max);
}

TEST(ObsSnapshot, DeltaSaturatesInsteadOfUnderflowing) {
  const HistogramSnapshot cur = snap_of({4});
  const HistogramSnapshot later = snap_of({4, 4});
  const HistogramSnapshot d = delta(cur, later);  // arguments swapped
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
}

TEST(ObsSnapshot, SuccessiveDeltasPartitionConcurrentWrites) {
  // One writer hammers the histogram while the reader takes rolling
  // snapshots (the exporter's loop). Counts and sums are monotonic, so the
  // interval deltas must partition the total exactly — no observation
  // counted twice or dropped, even mid-write.
  constexpr std::uint64_t kWrites = 200000;
  constexpr std::uint64_t kValue = 3;
  Histogram h;
  std::thread writer([&h] {
    for (std::uint64_t i = 0; i < kWrites; ++i) h.record(kValue);
  });

  std::uint64_t delta_count = 0;
  std::uint64_t delta_sum = 0;
  HistogramSnapshot last;
  while (last.count < kWrites) {
    const HistogramSnapshot now = h.snapshot();
    const HistogramSnapshot d = delta(now, last);
    delta_count += d.count;
    delta_sum += d.sum;
    last = now;
  }
  writer.join();

  const HistogramSnapshot final_snap = h.snapshot();
  EXPECT_EQ(final_snap.count, kWrites);
  EXPECT_EQ(delta_count, kWrites);
  EXPECT_EQ(delta_sum, kWrites * kValue);
}

TEST(ObsSnapshot, RegistryDeltaSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  registry.counter("reqs").add(10);
  registry.gauge("depth").set(2.5);
  const MetricsSnapshot before = registry.snapshot();
  registry.counter("reqs").add(5);
  registry.counter("late").add(3);  // registered after the baseline
  registry.gauge("depth").set(7.5);
  const MetricsSnapshot d = delta(registry.snapshot(), before);

  std::uint64_t reqs = 0, late = 0;
  for (const auto& [name, v] : d.counters) {
    if (name == "reqs") reqs = v;
    if (name == "late") late = v;
  }
  EXPECT_EQ(reqs, 5u);   // interval increment
  EXPECT_EQ(late, 3u);   // missing from baseline: passes through whole
  ASSERT_EQ(d.gauges.size(), 1u);
  EXPECT_EQ(d.gauges[0].second, 7.5);  // levels are not rates
}

// --- merge ----------------------------------------------------------------

TEST(ObsSnapshot, MergeWithEmptyReturnsTheOther) {
  const HistogramSnapshot a = snap_of({3, 5});
  const HistogramSnapshot empty;
  EXPECT_EQ(merge(a, empty).count, 2u);
  EXPECT_EQ(merge(empty, a).min, 3u);
  EXPECT_EQ(merge(empty, empty).count, 0u);
}

TEST(ObsSnapshot, MergeCombinesCountsAndExtremes) {
  const HistogramSnapshot a = snap_of({2, 4});
  const HistogramSnapshot b = snap_of({100});
  const HistogramSnapshot m = merge(a, b);
  EXPECT_EQ(m.count, 3u);
  EXPECT_EQ(m.sum, 106u);
  EXPECT_EQ(m.min, 2u);
  EXPECT_EQ(m.max, 100u);
}

// --- label sanitization ---------------------------------------------------

TEST(ObsSnapshot, SanitizeKeepsSafeCharactersVerbatim) {
  EXPECT_EQ(sanitize_metric_label("tenant-7"), "tenant-7");
  EXPECT_EQ(sanitize_metric_label("a.b_C-9"), "a.b_C-9");
}

TEST(ObsSnapshot, SanitizeNeutralizesHostileTenantIds) {
  // Commas would split the CSV dump, newlines the text dump, braces a
  // Prometheus label; all collapse to '_'.
  EXPECT_EQ(sanitize_metric_label("evil,id\nx y{z}"), "evil_id_x_y_z_");
  EXPECT_EQ(sanitize_metric_label("\"quoted\""), "_quoted_");
  // Multi-byte UTF-8 degrades to one '_' per byte — ugly but format-safe.
  EXPECT_EQ(sanitize_metric_label("\xc3\xa9"), "__");
}

TEST(ObsSnapshot, SanitizeTruncatesAndNeverReturnsEmpty) {
  const std::string long_id(200, 'a');
  EXPECT_EQ(sanitize_metric_label(long_id), std::string(kMaxLabelLength, 'a'));
  EXPECT_EQ(sanitize_metric_label(""), "_");
}

// --- exporter renderings --------------------------------------------------

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot s;
  s.counters.emplace_back("serve.submitted", 42);
  s.gauges.emplace_back("serve.queue_depth.shard0", 3.0);
  s.histograms.emplace_back("serve.ack_us.shard0", snap_of({8, 8, 8, 8}));
  return s;
}

TEST(ObsSnapshot, PrometheusTextMixesIntervalQuantilesWithCumulativeTotals) {
  const MetricsSnapshot cumulative = sample_snapshot();
  MetricsSnapshot interval = cumulative;
  interval.histograms[0].second = snap_of({500});  // last interval's delta

  std::ostringstream out;
  render_prometheus_text(cumulative, &interval, out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE cdbp_serve_submitted counter\n"
                      "cdbp_serve_submitted 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cdbp_serve_queue_depth_shard0 gauge"),
            std::string::npos);
  // Quantiles come from the interval snapshot (one value: exact)...
  EXPECT_NE(text.find("cdbp_serve_ack_us_shard0{quantile=\"0.5\"} 500"),
            std::string::npos);
  // ...while _sum/_count/_min/_max stay cumulative.
  EXPECT_NE(text.find("cdbp_serve_ack_us_shard0_count 4"), std::string::npos);
  EXPECT_NE(text.find("cdbp_serve_ack_us_shard0_sum 32"), std::string::npos);
}

TEST(ObsSnapshot, PrometheusTextWithoutIntervalUsesCumulativeQuantiles) {
  std::ostringstream out;
  render_prometheus_text(sample_snapshot(), nullptr, out);
  EXPECT_NE(out.str().find("cdbp_serve_ack_us_shard0{quantile=\"0.99\"} 8"),
            std::string::npos);
}

TEST(ObsSnapshot, JsonRenderingCarriesIntervalSubObject) {
  const MetricsSnapshot cumulative = sample_snapshot();
  MetricsSnapshot interval = cumulative;
  interval.histograms[0].second = snap_of({500});

  std::ostringstream out;
  render_stats_json(cumulative, &interval, 1.5, out);
  const std::string text = out.str();

  EXPECT_EQ(text.rfind("{\"interval_s\":1.5,", 0), 0u);
  EXPECT_EQ(text.substr(text.size() - 3), "}}\n");
  EXPECT_NE(text.find("\"serve.submitted\":42"), std::string::npos);
  EXPECT_NE(text.find("\"count\":4,\"sum\":32,\"min\":8,\"max\":8"),
            std::string::npos);
  EXPECT_NE(text.find("\"interval\":{\"count\":1,\"p50\":500"),
            std::string::npos);
}

TEST(ObsSnapshot, JsonRenderingEscapesHostileMetricNames) {
  // Registry names are code-controlled, but the renderer must still never
  // emit broken JSON if one embeds a sanitizer-escaped-but-odd label.
  MetricsSnapshot s;
  s.counters.emplace_back("bad\"name\\with\nnoise", 1);
  std::ostringstream out;
  render_stats_json(s, nullptr, 0.0, out);
  EXPECT_NE(out.str().find("\"bad\\\"name\\\\with\\nnoise\":1"),
            std::string::npos);
}

#endif  // CDBP_OBS_OFF

}  // namespace
}  // namespace cdbp::obs
