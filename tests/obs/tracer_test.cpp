#include "obs/tracer.h"

#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cdbp::obs {
namespace {

#ifdef CDBP_OBS_OFF

TEST(ObsTracer, CompiledOutShellsAreInertNoOps) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.instant("e", "cat", {{"k", 1}});
  tracer.complete("e", "cat", 0, 1, {{"k", 2.0}});
  tracer.flow_begin("f", "cat", 1, {{"k", 1}});
  tracer.flow_step("f", "cat", 1);
  tracer.flow_end("f", "cat", 1);
  EXPECT_EQ(tracer.now_ns(), 0u);
  TraceSpan span(tracer, "s", "cat", {{"k", "v"}});
  span.add_arg({"late", 3});
}

#else

/// Splits sink output into non-empty lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(ObsTracer, DisabledTracerEmitsNothing) {
  std::ostringstream out;
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  // No sink installed: instants, spans, and completes are all dropped.
  tracer.instant("dropped", "test");
  tracer.complete("dropped", "test", 0, 10);
  { TraceSpan span(tracer, "dropped", "test"); }
  EXPECT_TRUE(out.str().empty());
}

TEST(ObsTracer, JsonlSinkWritesOneObjectPerLine) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  EXPECT_TRUE(tracer.enabled());
  tracer.instant("first", "test");
  tracer.instant("second", "test");
  tracer.clear_sink();
  EXPECT_FALSE(tracer.enabled());

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(line.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(line.find("\"pid\":1"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"second\""), std::string::npos);
}

TEST(ObsTracer, ArgsSerializeByKind) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  tracer.instant("args", "test",
                 {{"n", 42}, {"x", 2.5}, {"who", "ha"}, {"neg", -7}});
  tracer.clear_sink();

  const std::string text = out.str();
  EXPECT_NE(text.find("\"args\":{"), std::string::npos);
  EXPECT_NE(text.find("\"n\":42"), std::string::npos);
  EXPECT_NE(text.find("\"x\":2.5"), std::string::npos);
  EXPECT_NE(text.find("\"who\":\"ha\""), std::string::npos);
  EXPECT_NE(text.find("\"neg\":-7"), std::string::npos);
}

TEST(ObsTracer, ArgsBeyondMaxAreDropped) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  tracer.instant("overflow", "test",
                 {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
  tracer.clear_sink();
  EXPECT_NE(out.str().find("\"d\":4"), std::string::npos);
  EXPECT_EQ(out.str().find("\"e\":"), std::string::npos);
}

TEST(ObsTracer, JsonStringsAreEscaped) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  tracer.instant("quote\"back\\slash", "test", {{"k", "tab\there"}});
  tracer.clear_sink();
  EXPECT_NE(out.str().find("\"name\":\"quote\\\"back\\\\slash\""),
            std::string::npos);
  EXPECT_NE(out.str().find("\"k\":\"tab\\there\""), std::string::npos);
}

TEST(ObsTracer, NonFiniteDoubleArgSerializesAsNull) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  tracer.instant("inf", "test",
                 {{"x", std::numeric_limits<double>::infinity()}});
  tracer.clear_sink();
  EXPECT_NE(out.str().find("\"x\":null"), std::string::npos);
}

TEST(ObsTracer, SpanEmitsCompleteEventWithDuration) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  {
    TraceSpan span(tracer, "work", "test", {{"items", 3}});
    span.add_arg({"result", "ok"});
  }
  tracer.clear_sink();

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"dur\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"items\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"result\":\"ok\""), std::string::npos);
}

TEST(ObsTracer, SpanConstructedWhileDisabledStaysSilent) {
  std::ostringstream out;
  Tracer tracer;
  TraceSpan span(tracer, "early", "test");
  // Enabling mid-span must not resurrect a span that skipped its clock read.
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  span.add_arg({"k", 1});
  tracer.clear_sink();
  // Only destruction after this point; the span emits nothing either way.
  EXPECT_TRUE(lines_of(out.str()).empty());
}

TEST(ObsTracer, ChromeSinkProducesFinalizedJsonObject) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<ChromeTraceSink>(out));
  tracer.instant("a", "test");
  { TraceSpan span(tracer, "b", "test"); }
  tracer.clear_sink();  // finalizes: closing bracket + displayTimeUnit

  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"b\""), std::string::npos);
  // Events are comma-separated inside the array: exactly one separator.
  std::size_t commas = 0;
  for (std::size_t pos = text.find(",\n{"); pos != std::string::npos;
       pos = text.find(",\n{", pos + 1))
    ++commas;
  EXPECT_EQ(commas, 1u);
}

TEST(ObsTracer, ReplacingSinkClosesTheOldOne) {
  std::ostringstream first_out;
  std::ostringstream second_out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<ChromeTraceSink>(first_out));
  tracer.instant("one", "test");
  tracer.set_sink(std::make_shared<JsonlSink>(second_out));
  tracer.instant("two", "test");
  tracer.clear_sink();
  // The Chrome sink was finalized by the replacement, not left dangling.
  EXPECT_NE(first_out.str().find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(first_out.str().find("\"name\":\"two\""), std::string::npos);
  EXPECT_NE(second_out.str().find("\"name\":\"two\""), std::string::npos);
}

TEST(ObsTracer, NowNsIsMonotonicFromSinkEpoch) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  const std::uint64_t a = tracer.now_ns();
  const std::uint64_t b = tracer.now_ns();
  EXPECT_LE(a, b);
  tracer.clear_sink();
}

TEST(ObsTracer, ConcurrentEmitsProduceWholeLines) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer]() {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.instant("tick", "test", {{"i", i}});
        TraceSpan span(tracer, "spin", "test");
      }
    });
  for (std::thread& t : threads) t.join();
  tracer.clear_sink();

  const auto lines = lines_of(out.str());
  EXPECT_EQ(lines.size(), 2u * kThreads * kPerThread);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(ObsTracer, FlowEventsSerializeChromePhasesAndStringId) {
  std::ostringstream out;
  Tracer tracer;
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  {
    TraceSpan span(tracer, "host", "test");  // flow events bind to a span
    tracer.flow_begin("req", "test", 7, {{"shard", 1}});
    tracer.flow_step("req", "test", 7);
    tracer.flow_end("req", "test", 7);
  }
  tracer.clear_sink();

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);  // s, t, f, then the host span's X
  // Chrome trace format: flow ids are decimal STRINGS (a bare number would
  // be rejected), and only the 'f' event carries the enclosing-slice
  // binding point "bp":"e".
  EXPECT_NE(lines[0].find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":\"7\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"shard\":1"), std::string::npos);
  EXPECT_EQ(lines[0].find("\"bp\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ph\":\"t\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"bp\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"7\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"ph\":\"X\""), std::string::npos);
  for (int i = 0; i < 3; ++i)
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find("\"name\":\"req\""),
              std::string::npos);
}

TEST(ObsTracer, FlowEventsWhileDisabledAreDropped) {
  std::ostringstream out;
  Tracer tracer;
  tracer.flow_begin("req", "test", 1);
  tracer.flow_end("req", "test", 1);
  tracer.set_sink(std::make_shared<JsonlSink>(out));
  tracer.clear_sink();
  EXPECT_TRUE(lines_of(out.str()).empty());
}

TEST(ObsTracer, GlobalTracerIsASingleton) {
  EXPECT_EQ(&Tracer::global(), &Tracer::global());
}

#endif  // CDBP_OBS_OFF

}  // namespace
}  // namespace cdbp::obs
