#include "opt/bin_packing.h"

#include <random>

#include <gtest/gtest.h>

namespace cdbp::opt {
namespace {

/// Brute-force exact bin count by enumerating set partitions (tiny n).
int brute_force(const std::vector<Load>& sizes) {
  const std::size_t n = sizes.size();
  if (n == 0) return 0;
  std::vector<int> assign(n, 0);
  int best = static_cast<int>(n);
  // Restricted-growth enumeration of partitions.
  auto feasible = [&](int bins) {
    std::vector<double> load(static_cast<std::size_t>(bins), 0.0);
    for (std::size_t i = 0; i < n; ++i)
      load[static_cast<std::size_t>(assign[i])] += sizes[i];
    for (double l : load)
      if (l > kBinCapacity + kLoadEps) return false;
    return true;
  };
  std::function<void(std::size_t, int)> rec = [&](std::size_t i, int used) {
    if (used >= best) return;
    if (i == n) {
      if (feasible(used)) best = used;
      return;
    }
    for (int b = 0; b <= used && b < best; ++b) {
      assign[i] = b;
      rec(i + 1, std::max(used, b + 1));
    }
  };
  rec(0, 0);
  return best;
}

TEST(BinPacking, TrivialCases) {
  EXPECT_EQ(bp_exact({}).value(), 0);
  EXPECT_EQ(bp_exact({0.5}).value(), 1);
  EXPECT_EQ(bp_exact({1.0, 1.0, 1.0}).value(), 3);
  EXPECT_EQ(bp_exact({0.5, 0.5}).value(), 1);
  EXPECT_EQ(bp_exact({0.6, 0.6}).value(), 2);
}

TEST(BinPacking, PerfectFits) {
  // 3 x (0.5 + 0.3 + 0.2).
  const std::vector<Load> sizes = {0.5, 0.5, 0.5, 0.3, 0.3, 0.3,
                                   0.2, 0.2, 0.2};
  EXPECT_EQ(bp_exact(sizes).value(), 3);
}

TEST(BinPacking, FfdIsSuboptimalSomewhere) {
  // The classical FFD = 3 vs OPT = 2... construct: OPT pairs
  // {0.6, 0.4} x2, FFD packs 0.6,0.6 separately then 0.4,0.4 shares: that
  // gives 3 bins? 0.6|0.4 ; 0.6|0.4 no: FFD sorted: .6 .6 .4 .4 ->
  // bin1{.6,.4}, bin2{.6,.4} = 2. Use the known FFD=OPT+1 family instead:
  const std::vector<Load> sizes = {0.36, 0.36, 0.36, 0.36, 0.36, 0.36,
                                   0.28, 0.28, 0.28, 0.28, 0.28, 0.28};
  // OPT: 4 bins of (0.36 + 0.36 + 0.28); wait that's 1.0 exactly with 6
  // of each size forming... 6x0.36 + 6x0.28: bins {.36,.36,.28} x 3 uses
  // 9 items, remaining {.28,.28,.28} -> 1 bin: OPT = 4.
  EXPECT_EQ(bp_exact(sizes).value(), 4);
  EXPECT_GE(bp_first_fit_decreasing(sizes), 4);
}

TEST(BinPacking, LowerBoundsAreValid) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> size(0.05, 1.0);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Load> sizes;
    const int n = 1 + static_cast<int>(rng() % 12);
    for (int k = 0; k < n; ++k) sizes.push_back(size(rng));
    const int exact = bp_exact(sizes).value();
    EXPECT_GE(exact, bp_volume_lower_bound(sizes));
    EXPECT_GE(exact, bp_l2_lower_bound(sizes));
    EXPECT_GE(exact, bp_lower_bound(sizes));
    EXPECT_LE(exact, bp_first_fit_decreasing(sizes));
  }
}

TEST(BinPacking, MatchesBruteForceOnTinyInstances) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> size(0.1, 1.0);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Load> sizes;
    const int n = 1 + static_cast<int>(rng() % 7);
    for (int k = 0; k < n; ++k) sizes.push_back(size(rng));
    EXPECT_EQ(bp_exact(sizes).value(), brute_force(sizes)) << "trial "
                                                           << trial;
  }
}

TEST(BinPacking, L2BeatsVolumeOnBigItems) {
  // Seven items of size 0.51: volume bound ceil(3.57) = 4, true need 7.
  const std::vector<Load> sizes(7, 0.51);
  EXPECT_EQ(bp_volume_lower_bound(sizes), 4);
  EXPECT_EQ(bp_l2_lower_bound(sizes), 7);
  EXPECT_EQ(bp_exact(sizes).value(), 7);
}

TEST(BinPacking, NodeLimitAborts) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> size(0.23, 0.41);
  std::vector<Load> sizes;
  for (int k = 0; k < 40; ++k) sizes.push_back(size(rng));
  BinPackingOptions opts;
  opts.node_limit = 3;
  // Either the FFD incumbent already matches the lower bound (allowed), or
  // the search aborts.
  const auto result = bp_exact(sizes, opts);
  if (result) {
    EXPECT_EQ(*result, bp_lower_bound(sizes));
  }
}

TEST(BinPacking, ExactFullBins) {
  // 32 items of 1/32 fit one bin exactly despite accumulation order.
  const std::vector<Load> sizes(32, 1.0 / 32.0);
  EXPECT_EQ(bp_exact(sizes).value(), 1);
}

}  // namespace
}  // namespace cdbp::opt
