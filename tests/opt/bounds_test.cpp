#include "opt/bounds.h"

#include <random>

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Bounds, KnownInstance) {
  // Two stacked 0.6-items over [0,4]: S_t = 1.2, ceil = 2.
  const Instance in = make_instance({{0.0, 4.0, 0.6}, {0.0, 4.0, 0.6}});
  const opt::Bounds b = opt::compute_bounds(in);
  EXPECT_DOUBLE_EQ(b.demand, 4.8);
  EXPECT_DOUBLE_EQ(b.span, 4.0);
  EXPECT_DOUBLE_EQ(b.ceil_integral, 8.0);
  EXPECT_DOUBLE_EQ(b.lower(), 8.0);
  EXPECT_DOUBLE_EQ(b.upper_ceil(), 16.0);
  EXPECT_DOUBLE_EQ(b.upper_linear(), 2.0 * (4.8 + 4.0));
}

TEST(Bounds, SpanDominatesForSparseLightItems) {
  const Instance in = make_instance({{0.0, 100.0, 0.01}});
  const opt::Bounds b = opt::compute_bounds(in);
  EXPECT_DOUBLE_EQ(b.lower(), 100.0);  // span, not demand (1.0)
}

TEST(Bounds, DemandNeverExceedsCeilIntegral) {
  // ceil(S_t) >= S_t pointwise, so the ceil integral dominates demand.
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 60;
    cfg.log2_mu = 5;
    const Instance in = workloads::make_general_random(cfg, rng);
    const opt::Bounds b = opt::compute_bounds(in);
    EXPECT_GE(b.ceil_integral + 1e-9, b.demand);
    EXPECT_GE(b.ceil_integral + 1e-9, b.span);
    EXPECT_LE(b.lower(), b.upper_ceil() + 1e-9);
    EXPECT_LE(b.upper_ceil(), 2.0 * (b.demand + b.span) + 1e-9);
  }
}

TEST(Bounds, ToStringMentionsFields) {
  const opt::Bounds b =
      opt::compute_bounds(make_instance({{0.0, 1.0, 0.5}}));
  const std::string s = b.to_string();
  EXPECT_NE(s.find("span"), std::string::npos);
  EXPECT_NE(s.find("lower"), std::string::npos);
}

TEST(Bounds, EmptyInstance) {
  const opt::Bounds b = opt::compute_bounds(Instance{});
  EXPECT_DOUBLE_EQ(b.lower(), 0.0);
  EXPECT_DOUBLE_EQ(b.upper_ceil(), 0.0);
}

}  // namespace
}  // namespace cdbp
