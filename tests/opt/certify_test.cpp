// The certify() entry point: every requested lattice edge gets filled,
// the accessors compose LB <= OPT_R <= OPT_NR <= UB, and infeasible exact
// routines degrade to bounds instead of failing.
#include "opt/certify.h"

#include <random>

#include <gtest/gtest.h>

#include "opt/offline_ffd.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Certify, SmallInstancePinsBothOptima) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.6},
      {1.0, 3.0, 0.6},
      {2.0, 5.0, 0.3},
  });
  const opt::Certificate cert = opt::certify(in);
  ASSERT_TRUE(cert.opt_r.has_value());
  ASSERT_TRUE(cert.opt_nr.has_value());
  // The lattice, with exact values at both interior nodes.
  EXPECT_LE(cert.bounds.lower(), cert.opt_r->cost + 1e-9);
  EXPECT_LE(cert.opt_r->cost, cert.opt_nr->cost + 1e-9);
  EXPECT_LE(cert.opt_nr->cost, cert.bounds.upper_ceil() + 1e-9);
  // Accessors collapse onto the exact values.
  EXPECT_DOUBLE_EQ(cert.lower_r(), cert.opt_r->cost);
  EXPECT_DOUBLE_EQ(cert.upper_r(), cert.opt_r->cost);
  EXPECT_DOUBLE_EQ(cert.lower_nr(), cert.opt_nr->cost);
  EXPECT_DOUBLE_EQ(cert.upper_nr(), cert.opt_nr->cost);
}

TEST(Certify, DisabledEdgesFallBackToBounds) {
  const Instance in = make_instance({{0.0, 4.0, 0.5}, {1.0, 3.0, 0.5}});
  opt::CertifyOptions opts;
  opts.exact_repacking = false;
  opts.exact_nonrepacking = false;
  const opt::Certificate cert = opt::certify(in, opts);
  EXPECT_FALSE(cert.opt_r.has_value());
  EXPECT_FALSE(cert.opt_nr.has_value());
  EXPECT_DOUBLE_EQ(cert.lower_r(), cert.bounds.lower());
  EXPECT_DOUBLE_EQ(cert.lower_nr(), cert.bounds.lower());
  EXPECT_GE(cert.upper_r(), cert.lower_r() - 1e-9);
  EXPECT_GE(cert.upper_nr(), cert.lower_nr() - 1e-9);
}

TEST(Certify, UpperBoundsTightenWithOptionalEdges) {
  std::mt19937_64 rng(7);
  workloads::GeneralConfig cfg;
  cfg.target_items = 40;  // too large for the exact routines' defaults
  cfg.log2_mu = 4;
  cfg.horizon = 16.0;
  const Instance in = workloads::make_general_random(cfg, rng);

  opt::CertifyOptions plain;
  plain.exact_nonrepacking = false;  // > max_items anyway
  plain.exact.max_items = 0;
  plain.repacking.max_active = 0;    // force the pipeline to decline
  const opt::Certificate base = opt::certify(in, plain);
  EXPECT_FALSE(base.opt_r.has_value());

  opt::CertifyOptions rich = plain;
  rich.tight_upper = true;
  rich.local_search_upper = true;
  const opt::Certificate cert = opt::certify(in, rich);
  ASSERT_TRUE(cert.witness_upper.has_value());
  ASSERT_TRUE(cert.local_search_upper.has_value());
  // Extra witnesses can only tighten the composed upper bounds.
  EXPECT_LE(cert.upper_r(), base.upper_r() + 1e-9);
  EXPECT_LE(cert.upper_nr(), base.upper_nr() + 1e-9);
  // Local search is seeded by FFD, so it is at least as tight.
  EXPECT_LE(*cert.local_search_upper,
            opt::offline_ffd_by_length(in).cost + 1e-9);
  // The lattice still holds end to end.
  EXPECT_LE(cert.lower_r(), cert.upper_r() + 1e-9);
  EXPECT_LE(cert.lower_nr(), cert.upper_nr() + 1e-9);
}

TEST(Certify, OptionForwardingReachesTheEngines) {
  const Instance in = make_instance({{0.0, 2.0, 0.5}, {0.5, 1.5, 0.4}});
  opt::CertifyOptions opts;
  opts.exact.max_items = 1;      // refuse the 2-item instance
  opts.repacking.max_active = 1; // refuse the 2-active snapshot
  const opt::Certificate cert = opt::certify(in, opts);
  EXPECT_FALSE(cert.opt_nr.has_value());
  EXPECT_FALSE(cert.opt_r.has_value());
}

}  // namespace
}  // namespace cdbp
