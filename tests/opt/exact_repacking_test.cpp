#include "opt/exact_repacking.h"

#include <random>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "opt/bounds.h"
#include "opt/exact.h"
#include "opt/repack.h"
#include "test_util.h"
#include "workloads/binary_input.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(ExactRepacking, SingleItem) {
  const Instance in = make_instance({{0.0, 5.0, 0.5}});
  const auto r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 5.0);
  EXPECT_DOUBLE_EQ(r->bins_over_time.at(2.0), 1.0);
}

TEST(ExactRepacking, RepackingBeatsFixedAssignments) {
  // Staggered heavies: any non-repacking packing keeps 2 bins through the
  // middle, the repacking optimum consolidates instantly.
  const Instance in = make_instance({
      {0.0, 2.0, 0.6},
      {1.0, 3.0, 0.6},
      {2.0, 4.0, 0.6},
  });
  const auto r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(r.has_value());
  // Snapshots: [0,1): 1 bin; [1,2): 2 bins; [2,3): 2 bins; [3,4): 1 bin.
  EXPECT_DOUBLE_EQ(r->cost, 1.0 + 2.0 + 2.0 + 1.0);
  const auto nr = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(nr.has_value());
  EXPECT_LE(r->cost, nr->cost + 1e-9);
}

TEST(ExactRepacking, GapsCostNothing) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {10.0, 11.0, 0.5}});
  const auto r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 2.0);
}

TEST(ExactRepacking, RefusesHugeSnapshots) {
  Instance in;
  for (int k = 0; k < 40; ++k) in.add(0.0, 1.0, 0.01);
  in.finalize();
  opt::ExactRepackingOptions opts;
  opts.max_active = 10;
  EXPECT_FALSE(opt::exact_opt_repacking(in, opts).has_value());
}

TEST(ExactRepacking, EmptyInstance) {
  const auto r = opt::exact_opt_repacking(Instance{});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
}

class ExactRepackingRandom : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExactRepackingRandom, SandwichedExactlyWhereItBelongs) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 12;
  cfg.log2_mu = 4;
  cfg.horizon = 14.0;
  cfg.size_max = 0.8;
  const Instance in = workloads::make_general_random(cfg, rng);
  const auto opt_r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(opt_r.has_value());

  const opt::Bounds b = opt::compute_bounds(in);
  // LB <= OPT_R (and the ceil-integral bound is exactly ∫ceil(S_t) <= OPT_R).
  EXPECT_GE(opt_r->cost, b.lower() - 1e-9);
  // OPT_R <= exact OPT_NR (repacking can only help).
  const auto opt_nr = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(opt_nr.has_value());
  EXPECT_LE(opt_r->cost, opt_nr->cost + 1e-9);
  // OPT_R <= the constructive Lemma 3.1 witness <= ∫2 ceil(S_t).
  const double witness = opt::repack_witness(in).cost;
  EXPECT_LE(opt_r->cost, witness + 1e-9);
  EXPECT_LE(opt_r->cost, b.upper_ceil() + 1e-9);
  // The profile integrates to the cost.
  EXPECT_NEAR(opt_r->bins_over_time.integral(), opt_r->cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRepackingRandom,
                         ::testing::Range<std::uint64_t>(0, 14));

TEST(ExactRepacking, BinaryInputIsPerfectlyPackable) {
  // sigma_mu has S_t = 1 at every instant with loads 1/(n+1): OPT_R = mu.
  const Instance in = workloads::make_binary_input(5);
  const auto r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 32.0);
  EXPECT_EQ(r->max_active, 6u);
}

TEST(ExactRepacking, MemoizationCountsDistinctSnapshots) {
  // A periodic instance re-creates identical snapshots; the solver must
  // solve each multiset once.
  Instance in;
  for (int k = 0; k < 12; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(k) + 1.0, 0.4);
  in.finalize();
  const auto r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->snapshots, 1u);  // one distinct multiset {0.4}
  EXPECT_DOUBLE_EQ(r->cost, 12.0);
}

}  // namespace
}  // namespace cdbp
