#include "opt/exact.h"

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"
#include "opt/bounds.h"
#include "opt/offline_ffd.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Exact, SingleItem) {
  const Instance in = make_instance({{0.0, 4.0, 0.5}});
  const auto r = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 4.0);
  EXPECT_EQ(r->assignment, (std::vector<int>{0}));
}

TEST(Exact, TwoItemsThatShare) {
  const Instance in = make_instance({{0.0, 4.0, 0.5}, {1.0, 3.0, 0.5}});
  const auto r = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 4.0);
  EXPECT_EQ(r->assignment[0], r->assignment[1]);
}

TEST(Exact, TwoItemsThatCannotShare) {
  const Instance in = make_instance({{0.0, 4.0, 0.7}, {1.0, 3.0, 0.7}});
  const auto r = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 4.0 + 2.0);
  EXPECT_NE(r->assignment[0], r->assignment[1]);
}

TEST(Exact, SharingCanBeSuboptimal) {
  // A short item can ride in the long item's bin for free, but pairing two
  // long items with a gap would cost more than separate bins never would.
  const Instance in = make_instance({
      {0.0, 10.0, 0.5},  // long
      {0.0, 1.0, 0.5},   // short, fits the long's bin
      {2.0, 3.0, 0.6},   // must go alone (0.6 + 0.5 > 1)
  });
  const auto r = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 10.0 + 1.0);
  EXPECT_EQ(r->assignment[0], r->assignment[1]);
  EXPECT_NE(r->assignment[0], r->assignment[2]);
}

TEST(Exact, RefusesOversizeInstances) {
  Instance in;
  for (int k = 0; k < 20; ++k) in.add(k, k + 1.0, 0.5);
  in.finalize();
  EXPECT_FALSE(opt::exact_opt_nonrepacking(in).has_value());
}

TEST(Exact, NodeLimitAborts) {
  // Staircase heavies: no two overlapping items share a bin, the greedy
  // seed lands strictly above the certified lower bound, and the admissible
  // lookahead cannot prune the root — both engines must actually search,
  // so a 5-node budget aborts. (The old all-overlapping instance is now
  // solved outright by the seed + lower-bound floor.)
  Instance in;
  for (int k = 0; k < 10; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(k) + 3.0, 0.6);
  in.finalize();
  opt::ExactOptions opts;
  opts.node_limit = 5;
  EXPECT_FALSE(opt::exact_opt_nonrepacking(in, opts).has_value());
  opts.engine = opt::ExactEngine::kReference;
  EXPECT_FALSE(opt::exact_opt_nonrepacking(in, opts).has_value());
}

TEST(Exact, GreedySeedDoesNotBillGaps) {
  // Regression: the historical seed skipped the span-overlap guard, so the
  // second item joined the first bin across the [2,5] gap and the
  // telescoped accounting billed the whole [0,7] span (cost 7) for a
  // packing that only occupies 4 time units. The guarded seed opens a new
  // bin and its cost is exactly the summed support measures.
  const Instance in = make_instance({{0.0, 2.0, 0.3}, {5.0, 7.0, 0.3}});
  const opt::GreedySeed seed = opt::greedy_nonrepacking_seed(in);
  EXPECT_DOUBLE_EQ(seed.cost, 4.0);
  EXPECT_NE(seed.assignment[0], seed.assignment[1]);
  const auto exact = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(exact->cost, 4.0);
}

TEST(Exact, GreedySeedCostMatchesItsOwnPacking) {
  // Property: on random instances the seed's telescoped cost equals the
  // recomputed support measure of the bins it reports — the invariant the
  // unguarded seed violated.
  for (std::uint64_t s = 0; s < 6; ++s) {
    std::mt19937_64 rng(s);
    workloads::GeneralConfig cfg;
    cfg.target_items = 14;
    cfg.log2_mu = 4;
    cfg.horizon = 12.0;
    cfg.size_max = 0.7;
    const Instance in = workloads::make_general_random(cfg, rng);
    const opt::GreedySeed seed = opt::greedy_nonrepacking_seed(in);
    std::map<int, StepFunction> busy;
    for (std::size_t k = 0; k < in.size(); ++k)
      busy[seed.assignment[k]].add(in[k].arrival, in[k].departure, 1.0);
    double recomputed = 0.0;
    for (auto& [bin, f] : busy) recomputed += f.support_measure(0.5);
    EXPECT_NEAR(seed.cost, recomputed, 1e-9) << "seed " << s;
  }
}

TEST(Exact, EmptyInstanceCostsZero) {
  const auto r = opt::exact_opt_nonrepacking(Instance{});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
}

class ExactRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRandom, SandwichedByBoundsAndOnlineCosts) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 9;
  cfg.log2_mu = 4;
  cfg.horizon = 12.0;
  cfg.size_max = 0.7;
  const Instance in = workloads::make_general_random(cfg, rng);
  const auto exact = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(exact.has_value());

  // LB <= OPT_NR.
  const opt::Bounds b = opt::compute_bounds(in);
  EXPECT_GE(exact->cost, b.lower() - 1e-9);

  // OPT_NR <= any feasible offline packing (FFD).
  EXPECT_LE(exact->cost, opt::offline_ffd_by_length(in).cost + 1e-9);

  // OPT_NR <= any online algorithm's cost.
  for (auto& f : testutil::online_factories()) {
    auto algo = f.make();
    EXPECT_LE(exact->cost, run_cost(in, *algo) + 1e-9)
        << f.name << " beat exact OPT on seed " << GetParam();
  }

  // The reported assignment must itself be feasible and have that cost.
  std::map<int, std::vector<std::size_t>> bins;
  for (std::size_t k = 0; k < in.size(); ++k)
    bins[exact->assignment[static_cast<std::size_t>(k)]].push_back(k);
  double cost = 0.0;
  for (const auto& [bin, members] : bins) {
    StepFunction load, busy;
    for (std::size_t m : members) {
      load.add(in[m].arrival, in[m].departure, in[m].size);
      busy.add(in[m].arrival, in[m].departure, 1.0);
    }
    EXPECT_LE(load.max_value(), 1.0 + 2 * kLoadEps);
    cost += busy.support_measure(0.5);
  }
  EXPECT_NEAR(cost, exact->cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandom,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace cdbp
