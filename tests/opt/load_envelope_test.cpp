// BinProfile unit tests: flat load/occupancy envelopes must reproduce the
// StepFunction semantics they replaced — range maxima, spans, and the
// zero/one-occupancy measures that drive local-search span deltas.
#include "opt/load_envelope.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

class BinProfileTest : public ::testing::Test {
 protected:
  // A [0,4) x 0.5, B [1,3) x 0.3, C [6,8) x 0.4 — one mid-bin gap.
  BinProfileTest() : in_(make_instance({{0.0, 4.0, 0.5},
                                        {1.0, 3.0, 0.3},
                                        {6.0, 8.0, 0.4}})) {}

  Instance in_;
};

TEST_F(BinProfileTest, LoadMaxOverWindows) {
  opt::BinProfile bin(&in_.items());
  bin.add(0);
  bin.add(1);
  bin.add(2);
  EXPECT_DOUBLE_EQ(bin.load_max(0.0, 4.0), 0.8);
  EXPECT_DOUBLE_EQ(bin.load_max(3.0, 4.0), 0.5);  // B departed
  EXPECT_DOUBLE_EQ(bin.load_max(4.0, 6.0), 0.0);  // the gap
  EXPECT_DOUBLE_EQ(bin.load_max(6.0, 8.0), 0.4);
  EXPECT_DOUBLE_EQ(bin.load_max(-5.0, 0.0), 0.0);   // before coverage
  EXPECT_DOUBLE_EQ(bin.load_max(8.0, 99.0), 0.0);   // after coverage
  EXPECT_DOUBLE_EQ(bin.max_load(), 0.8);
}

TEST_F(BinProfileTest, SpanAndOccupancyMeasures) {
  opt::BinProfile bin(&in_.items());
  bin.add(0);
  bin.add(1);
  bin.add(2);
  EXPECT_DOUBLE_EQ(bin.span(), 6.0);  // [0,4) + [6,8)
  EXPECT_DOUBLE_EQ(bin.zero_measure(0.0, 8.0), 2.0);   // the gap [4,6)
  EXPECT_DOUBLE_EQ(bin.zero_measure(4.5, 5.5), 1.0);   // prorated inside it
  EXPECT_DOUBLE_EQ(bin.one_measure(0.0, 4.0), 2.0);    // [0,1) + [3,4)
  EXPECT_DOUBLE_EQ(bin.one_measure(5.0, 7.0), 1.0);    // [6,7)
  // Outside coverage everything is zero-occupancy.
  EXPECT_DOUBLE_EQ(bin.zero_measure(10.0, 13.0), 3.0);
  EXPECT_DOUBLE_EQ(bin.one_measure(10.0, 13.0), 0.0);
}

TEST_F(BinProfileTest, FitsUsesCapacityWithTolerance) {
  opt::BinProfile bin(&in_.items());
  bin.add(0);
  bin.add(1);
  const Item fits_item{/*id=*/3, 1.0, 3.0, 0.2};   // 0.8 + 0.2 == capacity
  const Item too_big{/*id=*/4, 1.0, 3.0, 0.21};
  const Item in_gap{/*id=*/5, 4.0, 6.0, 0.9};      // load there is 0
  EXPECT_TRUE(bin.fits(fits_item));
  EXPECT_FALSE(bin.fits(too_big));
  EXPECT_TRUE(bin.fits(in_gap));
}

TEST_F(BinProfileTest, RemoveRestoresEnvelope) {
  opt::BinProfile bin(&in_.items());
  bin.add(0);
  bin.add(1);
  bin.remove(1);
  EXPECT_DOUBLE_EQ(bin.load_max(0.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(bin.one_measure(0.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(bin.span(), 4.0);
  bin.remove(0);
  EXPECT_TRUE(bin.empty());
  EXPECT_DOUBLE_EQ(bin.span(), 0.0);
  EXPECT_DOUBLE_EQ(bin.load_max(0.0, 4.0), 0.0);
}

TEST_F(BinProfileTest, ExactOccupancyAcrossAbuttingItems) {
  // Two items that abut at t=4 with equal sizes: occupancy is exactly 1
  // throughout (deltas are +/-1.0 exact), so the span has no seam.
  const Instance in = make_instance({{0.0, 4.0, 0.3}, {4.0, 8.0, 0.3}});
  opt::BinProfile bin(&in.items());
  bin.add(0);
  bin.add(1);
  EXPECT_DOUBLE_EQ(bin.span(), 8.0);
  EXPECT_DOUBLE_EQ(bin.zero_measure(0.0, 8.0), 0.0);
  EXPECT_DOUBLE_EQ(bin.one_measure(0.0, 8.0), 8.0);
}

}  // namespace
}  // namespace cdbp
