#include "opt/local_search.h"

#include <map>
#include <random>
#include <utility>

#include <gtest/gtest.h>

#include "core/step_function.h"
#include "opt/bounds.h"
#include "opt/exact.h"
#include "opt/offline_ffd.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

/// Recomputes the cost of an assignment and checks feasibility.
double assignment_cost(const Instance& in, const std::vector<int>& assign) {
  std::map<int, std::pair<StepFunction, StepFunction>> bins;  // load, busy
  for (std::size_t k = 0; k < in.size(); ++k) {
    auto& [load, busy] = bins[assign[k]];
    load.add(in[k].arrival, in[k].departure, in[k].size);
    busy.add(in[k].arrival, in[k].departure, 1.0);
  }
  double cost = 0.0;
  for (auto& [id, fns] : bins) {
    (void)id;
    EXPECT_LE(fns.first.max_value(), kBinCapacity + 2 * kLoadEps);
    cost += fns.second.support_measure(0.5);
  }
  return cost;
}

TEST(LocalSearch, FixesAnObviouslyBadSeed) {
  // Two compatible items seeded into different bins; the search merges.
  const Instance in = make_instance({{0.0, 4.0, 0.4}, {0.0, 4.0, 0.4}});
  const auto improved = opt::improve_packing(in, {0, 1});
  EXPECT_DOUBLE_EQ(improved.cost, 4.0);
  EXPECT_EQ(improved.assignment[0], improved.assignment[1]);
  EXPECT_GE(improved.moves, 1u);
}

TEST(LocalSearch, LeavesOptimalSeedAlone) {
  const Instance in = make_instance({{0.0, 4.0, 0.8}, {0.0, 4.0, 0.8}});
  const auto improved = opt::improve_packing(in, {0, 1});
  EXPECT_DOUBLE_EQ(improved.cost, 8.0);
  EXPECT_EQ(improved.moves, 0u);
}

TEST(LocalSearch, NeverWorseThanFfdSeed) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 60;
    cfg.log2_mu = 6;
    const Instance in = workloads::make_general_random(cfg, rng);
    const double ffd = opt::offline_ffd_by_length(in).cost;
    const auto ls = opt::local_search_opt_nr(in);
    EXPECT_LE(ls.cost, ffd + 1e-9) << "trial " << trial;
    EXPECT_GE(ls.cost, opt::compute_bounds(in).lower() - 1e-9);
    EXPECT_NEAR(ls.cost, assignment_cost(in, ls.assignment), 1e-9);
  }
}

TEST(LocalSearch, NeverBeatsExactOpt) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 9;
    cfg.log2_mu = 4;
    cfg.horizon = 10.0;
    const Instance in = workloads::make_general_random(cfg, rng);
    const auto exact = opt::exact_opt_nonrepacking(in);
    ASSERT_TRUE(exact.has_value());
    const auto ls = opt::local_search_opt_nr(in);
    EXPECT_GE(ls.cost, exact->cost - 1e-9) << "trial " << trial;
  }
}

TEST(LocalSearch, OftenReachesExactOptOnTinyInstances) {
  // Not a guarantee, but across 20 tiny instances the gap should close on
  // a clear majority — a regression canary for the move logic.
  std::mt19937_64 rng(11);
  int optimal = 0, total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 8;
    cfg.log2_mu = 3;
    cfg.horizon = 8.0;
    const Instance in = workloads::make_general_random(cfg, rng);
    const auto exact = opt::exact_opt_nonrepacking(in);
    ASSERT_TRUE(exact.has_value());
    const auto ls = opt::local_search_opt_nr(in);
    ++total;
    if (approx_equal(ls.cost, exact->cost, 1e-6)) ++optimal;
  }
  EXPECT_GE(optimal * 2, total);  // >= 50%
}

TEST(LocalSearch, RejectsBadSeeds) {
  const Instance in = make_instance({{0.0, 2.0, 0.9}, {0.0, 2.0, 0.9}});
  EXPECT_THROW((void)opt::improve_packing(in, {0}), std::invalid_argument);
  EXPECT_THROW((void)opt::improve_packing(in, {0, -1}),
               std::invalid_argument);
  EXPECT_THROW((void)opt::improve_packing(in, {0, 0}),  // overloaded bin
               std::invalid_argument);
}

TEST(LocalSearch, RespectsMoveBudget) {
  std::mt19937_64 rng(13);
  workloads::GeneralConfig cfg;
  cfg.target_items = 80;
  cfg.log2_mu = 5;
  const Instance in = workloads::make_general_random(cfg, rng);
  opt::LocalSearchOptions opts;
  opts.max_moves = 2;
  const auto ls = opt::local_search_opt_nr(in, opts);
  EXPECT_LE(ls.moves, 2u);
}

TEST(LocalSearch, EmptyInstance) {
  const auto ls = opt::local_search_opt_nr(Instance{});
  EXPECT_DOUBLE_EQ(ls.cost, 0.0);
  EXPECT_TRUE(ls.assignment.empty());
}

}  // namespace
}  // namespace cdbp
