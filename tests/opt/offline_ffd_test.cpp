#include "opt/offline_ffd.h"

#include <random>

#include <gtest/gtest.h>

#include "opt/bounds.h"
#include "opt/exact.h"
#include "opt/repack.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(OfflineFfd, PacksLongestFirst) {
  // The long light item seeds bin 0; shorts that fit join it.
  const Instance in = make_instance({
      {0.0, 1.0, 0.5},
      {0.0, 8.0, 0.4},
      {1.0, 2.0, 0.5},
  });
  const opt::OfflineResult r = opt::offline_ffd_by_length(in);
  EXPECT_EQ(r.bins, 1u);
  EXPECT_DOUBLE_EQ(r.cost, 8.0);
  EXPECT_EQ(r.assignment[0], 0);
  EXPECT_EQ(r.assignment[1], 0);
  EXPECT_EQ(r.assignment[2], 0);
}

TEST(OfflineFfd, RespectsCapacityOverTime) {
  const Instance in = make_instance({
      {0.0, 4.0, 0.7},
      {2.0, 6.0, 0.7},  // overlaps on [2,4]: cannot share
  });
  const opt::OfflineResult r = opt::offline_ffd_by_length(in);
  EXPECT_EQ(r.bins, 2u);
  EXPECT_DOUBLE_EQ(r.cost, 8.0);
}

TEST(OfflineFfd, DisjointItemsShareABinWithoutExtraCost) {
  // Bin span is the measure of the union: gaps are free, so the reported
  // cost equals 2 even if FFD stacks the disjoint items in one bin.
  const Instance in = make_instance({{0.0, 1.0, 0.9}, {5.0, 6.0, 0.9}});
  const opt::OfflineResult r = opt::offline_ffd_by_length(in);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(OfflineFfd, EmptyInstance) {
  const opt::OfflineResult r = opt::offline_ffd_by_length(Instance{});
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.bins, 0u);
}

class OfflineFfdRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineFfdRandom, WithinFourTimesExactOpt) {
  // Empirical check of the 4-approximation claim our DC substitute makes
  // (DESIGN.md §5): FFD-by-length stays within 4x of exact OPT_NR on
  // every tested instance.
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.target_items = 10;
  cfg.log2_mu = 4;
  cfg.horizon = 10.0;
  const Instance in = workloads::make_general_random(cfg, rng);
  const auto exact = opt::exact_opt_nonrepacking(in);
  ASSERT_TRUE(exact.has_value());
  const opt::OfflineResult ffd = opt::offline_ffd_by_length(in);
  EXPECT_GE(ffd.cost, exact->cost - 1e-9);
  EXPECT_LE(ffd.cost, 4.0 * exact->cost + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineFfdRandom,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(BestUpperBounds, OrderingHolds) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 40;
    cfg.log2_mu = 5;
    const Instance in = workloads::make_general_random(cfg, rng);
    const opt::Bounds b = opt::compute_bounds(in);
    const double ub_r = opt::best_opt_upper_bound(in);
    const double ub_nr = opt::best_opt_nr_upper_bound(in);
    EXPECT_GE(ub_r, b.lower() - 1e-9);
    EXPECT_LE(ub_r, b.upper_ceil() + 1e-9);
    // A repacking optimum is never worse than a non-repacking one; our
    // *upper bounds* preserve that direction only loosely, but both must
    // dominate the lower bound.
    EXPECT_GE(ub_nr, b.lower() - 1e-9);
  }
}

}  // namespace
}  // namespace cdbp
