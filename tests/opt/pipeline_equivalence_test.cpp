// Old-vs-new equivalence for every routine the certification pipeline
// rebuilt (ISSUE acceptance): on seeded random instances — general and
// aligned — the optimized engines must reproduce the preserved reference
// implementations bit for bit: equal costs (EXPECT_EQ on doubles is
// bitwise) and equal assignments.
#include <random>

#include <gtest/gtest.h>

#include "opt/exact.h"
#include "opt/exact_repacking.h"
#include "opt/local_search.h"
#include "opt/offline_ffd.h"
#include "workloads/aligned_random.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

void expect_equivalent(const Instance& in, const std::string& label) {
  SCOPED_TRACE(label);

  // --- exact OPT_R: reference sweep vs snapshot pipeline ------------------
  const auto rep_ref = opt::exact_opt_repacking_reference(in);
  const auto rep_seq = opt::exact_opt_repacking(in);
  ASSERT_EQ(rep_ref.has_value(), rep_seq.has_value());
  if (rep_ref) {
    EXPECT_EQ(rep_ref->cost, rep_seq->cost);  // bit-identical integration
    EXPECT_EQ(rep_ref->max_active, rep_seq->max_active);
    // The quantized key can only merge multisets the exact-double map
    // keeps separate.
    EXPECT_LE(rep_seq->distinct_snapshots, rep_ref->distinct_snapshots);
    // And the parallel path must agree with the sequential one.
    opt::ExactRepackingOptions par;
    par.threads = 4;
    const auto rep_par = opt::exact_opt_repacking(in, par);
    ASSERT_TRUE(rep_par.has_value());
    EXPECT_EQ(rep_seq->cost, rep_par->cost);
  }

  // --- exact OPT_NR: optimized vs reference branch & bound ----------------
  opt::ExactOptions ropts;
  ropts.engine = opt::ExactEngine::kReference;
  const auto nr_ref = opt::exact_opt_nonrepacking(in, ropts);
  const auto nr_opt = opt::exact_opt_nonrepacking(in);
  ASSERT_EQ(nr_ref.has_value(), nr_opt.has_value());
  if (nr_ref) {
    EXPECT_EQ(nr_ref->cost, nr_opt->cost);
    EXPECT_EQ(nr_ref->assignment, nr_opt->assignment);
  }

  // --- offline FFD: envelope vs reference probes --------------------------
  const auto ffd_ref = opt::offline_ffd_by_length(in, opt::FitEngine::kReference);
  const auto ffd_env = opt::offline_ffd_by_length(in, opt::FitEngine::kEnvelope);
  EXPECT_EQ(ffd_ref.cost, ffd_env.cost);
  EXPECT_EQ(ffd_ref.bins, ffd_env.bins);
  EXPECT_EQ(ffd_ref.assignment, ffd_env.assignment);

  // --- local search: envelope vs reference span deltas --------------------
  opt::LocalSearchOptions ls_ref;
  ls_ref.engine = opt::FitEngine::kReference;
  opt::LocalSearchOptions ls_env;
  ls_env.engine = opt::FitEngine::kEnvelope;
  const auto s_ref = opt::local_search_opt_nr(in, ls_ref);
  const auto s_env = opt::local_search_opt_nr(in, ls_env);
  EXPECT_EQ(s_ref.cost, s_env.cost);
  EXPECT_EQ(s_ref.assignment, s_env.assignment);
  EXPECT_EQ(s_ref.moves, s_env.moves);
  EXPECT_EQ(s_ref.rounds, s_env.rounds);
}

class PipelineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineEquivalence, GeneralRandom) {
  std::mt19937_64 rng(GetParam());
  workloads::GeneralConfig cfg;
  cfg.shape = static_cast<workloads::GeneralShape>(GetParam() % 4);
  cfg.target_items = 11;
  cfg.log2_mu = 4;
  cfg.horizon = 12.0;
  cfg.size_max = 0.7;
  expect_equivalent(workloads::make_general_random(cfg, rng),
                    "general seed " + std::to_string(GetParam()));
}

TEST_P(PipelineEquivalence, AlignedRandom) {
  std::mt19937_64 rng(GetParam() ^ 0xA11A11);
  workloads::AlignedConfig cfg;
  cfg.n = 3;
  cfg.max_bucket = 3;
  cfg.arrivals_per_slot = 0.6;
  expect_equivalent(workloads::make_aligned_random(cfg, rng),
                    "aligned seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace cdbp
