#include "opt/reduction.h"

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "opt/bounds.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Reduction, DepartureRoundsUpToNextTypeBoundary) {
  // Item: length 3 -> i = 2 (window 4); arrival 5 in (4, 8] -> c = 2;
  // new departure = (c+1) * 4 = 12.
  const Item r{0, 5.0, 8.0, 0.5};
  EXPECT_DOUBLE_EQ(opt::reduced_departure(r), 12.0);
}

TEST(Reduction, ArrivalAtZeroPhaseZero) {
  // Arrival 0 -> c = 0 -> departure 2^i.
  const Item r{0, 0.0, 3.0, 0.5};  // i = 2
  EXPECT_DOUBLE_EQ(opt::reduced_departure(r), 4.0);
}

TEST(Reduction, NeverShortensAndAtMostQuadruples) {
  std::mt19937_64 rng(11);
  workloads::GeneralConfig cfg;
  cfg.target_items = 300;
  cfg.log2_mu = 8;
  const Instance in = workloads::make_general_random(cfg, rng);
  const Instance red = opt::apply_reduction(in);
  ASSERT_EQ(red.size(), in.size());
  // apply_reduction finalizes with a stable sort on unchanged arrivals, so
  // item order (and ids) survive.
  for (std::size_t k = 0; k < in.size(); ++k) {
    EXPECT_DOUBLE_EQ(red[k].arrival, in[k].arrival);
    EXPECT_GE(red[k].departure, in[k].departure - kTimeEps);
    EXPECT_LE(red[k].length(), 4.0 * in[k].length() + kTimeEps);
  }
}

TEST(Reduction, Observations1And2) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 120;
    cfg.log2_mu = 6;
    const Instance in = workloads::make_general_random(cfg, rng);
    const Instance red = opt::apply_reduction(in);
    EXPECT_LE(red.span(), 4.0 * in.span() + kTimeEps);
    EXPECT_LE(red.total_demand(), 4.0 * in.total_demand() + kTimeEps);
  }
}

TEST(Reduction, SameTypeItemsDepartTogether) {
  std::mt19937_64 rng(17);
  workloads::GeneralConfig cfg;
  cfg.target_items = 200;
  cfg.log2_mu = 6;
  const Instance in = workloads::make_general_random(cfg, rng);
  const Instance red = opt::apply_reduction(in);
  std::map<std::pair<int, std::int64_t>, double> departure_of_type;
  for (std::size_t k = 0; k < in.size(); ++k) {
    const DurationType t = duration_type(in[k]);
    const auto key = std::make_pair(t.i, static_cast<std::int64_t>(t.c));
    const auto [it, fresh] =
        departure_of_type.emplace(key, red[k].departure);
    if (!fresh) {
      EXPECT_DOUBLE_EQ(it->second, red[k].departure);
    }
  }
}

TEST(Reduction, Corollary34OptLossBounded) {
  // UB(OPT(sigma')) <= 16 LB(OPT(sigma)) would be too strong to check with
  // bounds alone; instead verify the chain the proof actually uses:
  // 2 span' + 2 d' <= 8 span + 8 d <= 16 max(span, d) <= 16 LB.
  std::mt19937_64 rng(19);
  workloads::GeneralConfig cfg;
  cfg.target_items = 150;
  cfg.log2_mu = 7;
  const Instance in = workloads::make_general_random(cfg, rng);
  const Instance red = opt::apply_reduction(in);
  const opt::Bounds orig = opt::compute_bounds(in);
  const opt::Bounds reduced = opt::compute_bounds(red);
  EXPECT_LE(reduced.upper_linear(), 8.0 * (orig.span + orig.demand) + 1e-9);
  EXPECT_LE(reduced.upper_linear(), 16.0 * orig.lower() + 1e-9);
}

TEST(Reduction, AlignedItemsExtendToNextMultiple) {
  // Aligned bucket-2 item at t=8, length 4: i=2, c=2, departs (c+1)*4=12.
  const Item r{0, 8.0, 12.0, 0.3};
  EXPECT_DOUBLE_EQ(opt::reduced_departure(r), 12.0);  // already at boundary
  const Item q{0, 8.0, 11.0, 0.3};  // length 3, i=2
  EXPECT_DOUBLE_EQ(opt::reduced_departure(q), 12.0);
}

TEST(Reduction, RequiresMinLengthOne) {
  const Instance in = make_instance({{0.0, 0.5, 0.5}});
  EXPECT_THROW((void)opt::apply_reduction(in), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp
