#include "opt/repack.h"

#include <random>

#include <gtest/gtest.h>

#include "opt/bounds.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(Repack, SingleItem) {
  const Instance in = make_instance({{0.0, 5.0, 0.5}});
  const opt::RepackResult r = opt::repack_witness(in);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
  EXPECT_EQ(r.max_open, 1u);
}

TEST(Repack, MergesAfterDepartures) {
  // Two 0.6-items force two bins over [0,2]; one departs at 2, the other
  // (0.6) then coexists with a 0.3 newcomer: they merge into one bin.
  const Instance in = make_instance({
      {0.0, 2.0, 0.6},
      {0.0, 4.0, 0.6},
      {2.0, 4.0, 0.3},
  });
  const opt::RepackResult r = opt::repack_witness(in);
  // [0,2): 2 bins; [2,4): 1 bin (0.6 + 0.3 share after consolidation).
  EXPECT_DOUBLE_EQ(r.cost, 2.0 * 2.0 + 1.0 * 2.0);
}

TEST(Repack, InvariantAnyTwoBinsExceedCapacity) {
  // The witness cost must be <= integral of 2*ceil(S_t) (Lemma 3.1).
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    workloads::GeneralConfig cfg;
    cfg.target_items = 80;
    cfg.log2_mu = 6;
    cfg.shape = trial % 2 == 0 ? workloads::GeneralShape::kLogUniform
                               : workloads::GeneralShape::kGeometricBursts;
    const Instance in = workloads::make_general_random(cfg, rng);
    const opt::Bounds b = opt::compute_bounds(in);
    const opt::RepackResult r = opt::repack_witness(in);
    EXPECT_LE(r.cost, b.upper_ceil() + 1e-6) << "trial " << trial;
    EXPECT_GE(r.cost, b.lower() - 1e-6) << "trial " << trial;
  }
}

TEST(Repack, ProfileIntegralEqualsCost) {
  const Instance in = make_instance({
      {0.0, 3.0, 0.9},
      {1.0, 5.0, 0.9},
      {2.0, 4.0, 0.9},
  });
  const opt::RepackResult r = opt::repack_witness(in);
  EXPECT_NEAR(r.open_bins.integral(), r.cost, 1e-9);
}

TEST(Repack, EmptyInstance) {
  const opt::RepackResult r = opt::repack_witness(Instance{});
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.max_open, 0u);
}

TEST(Repack, GapBetweenBlocksCostsNothing) {
  const Instance in = make_instance({{0.0, 1.0, 0.5}, {10.0, 11.0, 0.5}});
  const opt::RepackResult r = opt::repack_witness(in);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
}

TEST(Repack, BeatsNoRepackingOnInterleavedHeavies) {
  // Alternating heavy arrivals/departures where a fixed assignment wastes
  // bins but repacking consolidates aggressively.
  Instance in;
  for (int k = 0; k < 10; ++k) {
    const Time t = static_cast<Time>(k);
    in.add(t, t + 1.5, 0.55);
  }
  in.finalize();
  const opt::RepackResult r = opt::repack_witness(in);
  const opt::Bounds b = opt::compute_bounds(in);
  EXPECT_LE(r.cost, b.upper_ceil() + 1e-9);
}

}  // namespace
}  // namespace cdbp
