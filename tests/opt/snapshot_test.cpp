// The snapshot layer of the OPT_R pipeline: commutative incremental
// multiset keys, kLoadEps-quantized deduplication, the documented
// distinct_snapshots / cache_hits counters, and the parallel solve path.
#include "opt/snapshot.h"

#include <cmath>

#include <gtest/gtest.h>

#include "opt/bin_packing.h"
#include "opt/exact_repacking.h"
#include "test_util.h"

namespace cdbp {
namespace {

using testutil::make_instance;

TEST(SnapshotKey, CommutativeAndInvertible) {
  const std::int64_t a = opt::quantize_load(0.3);
  const std::int64_t b = opt::quantize_load(0.5);
  const std::int64_t c = opt::quantize_load(0.7);

  opt::SnapshotKey k1;
  k1.insert(a);
  k1.insert(b);
  k1.insert(c);
  k1.erase(b);

  opt::SnapshotKey k2;
  k2.insert(c);  // different insertion order
  k2.insert(a);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(opt::SnapshotKeyHash{}(k1), opt::SnapshotKeyHash{}(k2));

  k2.insert(a);  // multiplicity matters
  EXPECT_FALSE(k1 == k2);
}

TEST(SnapshotKey, QuantizationMergesUlpNeighbours) {
  const double s = 0.4;
  const double s_ulp = std::nextafter(s, 1.0);
  ASSERT_NE(s, s_ulp);
  EXPECT_EQ(opt::quantize_load(s), opt::quantize_load(s_ulp));
  // But genuinely different sizes stay apart.
  EXPECT_NE(opt::quantize_load(0.4), opt::quantize_load(0.4 + 1e-3));
}

TEST(Snapshot, UlpPerturbedDuplicateCollapses) {
  // Two single-item epochs whose sizes differ by one ulp: the old
  // exact-double std::map memo counted two distinct multisets and solved
  // twice; the quantized key recognizes the duplicate. (This is the test
  // that fails against the exact-double key.)
  const double s = 0.4;
  const Instance in = make_instance({
      {0.0, 1.0, s},
      {2.0, 3.0, std::nextafter(s, 1.0)},
  });
  const auto ref = opt::exact_opt_repacking_reference(in);
  const auto pipe = opt::exact_opt_repacking(in);
  ASSERT_TRUE(ref.has_value());
  ASSERT_TRUE(pipe.has_value());
  EXPECT_EQ(ref->distinct_snapshots, 2u);
  EXPECT_EQ(ref->cache_hits, 0u);
  EXPECT_EQ(pipe->distinct_snapshots, 1u);
  EXPECT_EQ(pipe->cache_hits, 1u);
  EXPECT_EQ(pipe->snapshots, 1u);
  EXPECT_EQ(ref->cost, pipe->cost);
}

TEST(Snapshot, CountersOnPeriodicInstance) {
  // Twelve back-to-back unit epochs of the same multiset {0.4}: one
  // distinct snapshot, eleven hash hits, every interval accounted.
  Instance in;
  for (int k = 0; k < 12; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(k) + 1.0, 0.4);
  in.finalize();

  const auto sweep = opt::collect_snapshots(in, 24);
  ASSERT_TRUE(sweep.has_value());
  EXPECT_EQ(sweep->snapshots.size(), 1u);
  EXPECT_EQ(sweep->cache_hits, 11u);
  EXPECT_EQ(sweep->intervals.size(), 12u);
  EXPECT_EQ(sweep->max_active, 1u);
  EXPECT_DOUBLE_EQ(sweep->snapshots[0].dwell, 12.0);

  for (auto* run : {&opt::exact_opt_repacking, &opt::exact_opt_repacking_reference}) {
    const auto r = (*run)(in, opt::ExactRepackingOptions{});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->distinct_snapshots, 1u);
    EXPECT_EQ(r->cache_hits, 11u);
    EXPECT_EQ(r->snapshots, 1u);
    EXPECT_EQ(r->max_active, 1u);
    EXPECT_DOUBLE_EQ(r->cost, 12.0);
  }
}

TEST(Snapshot, MaxActiveCountsEveryInterval) {
  // max_active must track the peak over *all* intervals, including ones
  // whose multiset was a cache hit.
  const Instance in = make_instance({
      {0.0, 4.0, 0.2},
      {1.0, 2.0, 0.2},  // peak of 2 in the middle
      {5.0, 6.0, 0.2},  // cache hit of the {0.2} snapshot
  });
  const auto r = opt::exact_opt_repacking(in);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->max_active, 2u);
  EXPECT_GE(r->cache_hits, 1u);
}

TEST(Snapshot, ChainHintsRecorded) {
  // Staircase arrivals: each event adds one item, so consecutive distinct
  // snapshots form an arrivals-only chain the solver can bracket.
  Instance in;
  for (int k = 0; k < 6; ++k)
    in.add(static_cast<Time>(k), 10.0, 0.1 + 0.05 * k);
  in.finalize();
  const auto sweep = opt::collect_snapshots(in, 24);
  ASSERT_TRUE(sweep.has_value());
  ASSERT_EQ(sweep->snapshots.size(), 6u);
  for (std::size_t k = 1; k < 6; ++k) {
    EXPECT_EQ(sweep->snapshots[k].prev, static_cast<std::int64_t>(k - 1));
    EXPECT_EQ(sweep->snapshots[k].delta, opt::SnapshotDelta::kArrivals);
    EXPECT_EQ(sweep->snapshots[k].delta_count, 1u);
  }
}

TEST(Snapshot, ParallelSolveMatchesSequential) {
  // Many distinct snapshots solved on a 4-thread pool through the shared
  // BpCache — the instance the TSan job leans on.
  Instance in;
  for (int k = 0; k < 20; ++k)
    in.add(static_cast<Time>(k), static_cast<Time>(k) + 5.0,
           0.05 + 0.01 * k);
  in.finalize();

  opt::ExactRepackingOptions seq;
  opt::ExactRepackingOptions par;
  par.threads = 4;
  const auto r_seq = opt::exact_opt_repacking(in, seq);
  const auto r_par = opt::exact_opt_repacking(in, par);
  ASSERT_TRUE(r_seq.has_value());
  ASSERT_TRUE(r_par.has_value());
  EXPECT_EQ(r_seq->cost, r_par->cost);
  EXPECT_EQ(r_seq->distinct_snapshots, r_par->distinct_snapshots);

  // A shared cross-call cache never changes results, only work.
  opt::BpCache cache;
  opt::ExactRepackingOptions cached = par;
  cached.cache = &cache;
  const auto first = opt::exact_opt_repacking(in, cached);
  const auto second = opt::exact_opt_repacking(in, cached);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->cost, r_seq->cost);
  EXPECT_EQ(second->cost, r_seq->cost);
  EXPECT_EQ(second->snapshots, 0u);  // everything came from the cache
}

}  // namespace
}  // namespace cdbp
