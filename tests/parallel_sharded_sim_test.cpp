#include "parallel/sharded_sim.h"

#include <cstdio>
#include <filesystem>
#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"
#include "test_util.h"
#include "workloads/general_random.h"
#include "workloads/instance_file.h"

namespace cdbp::parallel {
namespace {

std::unique_ptr<Algorithm> make_ff() {
  return std::make_unique<algos::FirstFit>();
}
std::unique_ptr<Algorithm> make_bf() {
  return std::make_unique<algos::BestFit>();
}

Instance make_test_instance(std::uint64_t seed, int items = 150) {
  std::mt19937_64 rng(seed);
  workloads::GeneralConfig cfg;
  cfg.target_items = items;
  cfg.log2_mu = 5;
  cfg.horizon = 30.0;
  return workloads::make_general_random(cfg, rng);
}

TEST(ShardedSim, MatchesSequentialRunsInTaskOrder) {
  const Instance a = make_test_instance(1);
  const Instance b = make_test_instance(2);
  std::vector<ShardTask> tasks;
  tasks.push_back({"ff/a", make_ff, &a, {}});
  tasks.push_back({"bf/a", make_bf, &a, {}});
  tasks.push_back({"ff/b", make_ff, &b, {}});
  tasks.push_back({"bf/b", make_bf, &b, {}});

  ShardedSimOptions opts;
  opts.threads = 3;
  const ShardedSimReport report = run_sharded(tasks, opts);
  ASSERT_EQ(report.results.size(), tasks.size());
  EXPECT_EQ(report.shards, 3u);

  const Simulator sim{SimulatorOptions{.keep_history = false,
                                       .storage = LedgerStorage::kSoa}};
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto algo = tasks[i].make();
    const RunResult want = sim.run(*tasks[i].instance, *algo);
    const ShardTaskResult& got = report.results[i];
    EXPECT_EQ(got.label, tasks[i].label);
    EXPECT_EQ(got.shard, i % report.shards);
    EXPECT_EQ(got.cost, want.cost);  // bitwise: parallelism changes nothing
    EXPECT_EQ(got.bins_opened, want.bins_opened);
    EXPECT_EQ(got.max_open, want.max_open);
    EXPECT_EQ(got.items, want.items);
    EXPECT_GE(got.seconds, 0.0);
  }
}

TEST(ShardedSim, StreamedTaskMatchesInRamTask) {
  const Instance in = make_test_instance(3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdbp_sharded_sim.cdbpi")
          .string();
  workloads::write_instance_file(path, in, /*chunk_items=*/64);

  std::vector<ShardTask> tasks;
  tasks.push_back({"in-ram", make_ff, &in, {}});
  tasks.push_back({"streamed", make_ff, nullptr, path});
  ShardedSimOptions opts;
  opts.threads = 2;
  const ShardedSimReport report = run_sharded(tasks, opts);
  std::remove(path.c_str());

  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_EQ(report.results[0].cost, report.results[1].cost);  // bitwise
  EXPECT_EQ(report.results[0].bins_opened, report.results[1].bins_opened);
  EXPECT_EQ(report.results[0].items, report.results[1].items);
}

TEST(ShardedSim, StorageBackendsAgree) {
  const Instance in = make_test_instance(4);
  std::vector<ShardTask> tasks;
  for (const auto& f : testutil::online_factories())
    tasks.push_back({f.name, f.make, &in, {}});

  ShardedSimOptions soa;
  soa.threads = 2;
  soa.storage = LedgerStorage::kSoa;
  ShardedSimOptions ref = soa;
  ref.storage = LedgerStorage::kReference;
  const ShardedSimReport rs = run_sharded(tasks, soa);
  const ShardedSimReport rr = run_sharded(tasks, ref);
  ASSERT_EQ(rs.results.size(), rr.results.size());
  for (std::size_t i = 0; i < rs.results.size(); ++i) {
    EXPECT_EQ(rs.results[i].cost, rr.results[i].cost) << tasks[i].label;
    EXPECT_EQ(rs.results[i].bins_opened, rr.results[i].bins_opened);
    EXPECT_EQ(rs.results[i].max_open, rr.results[i].max_open);
  }
}

TEST(ShardedSim, MergedHistogramCoversAllRuns) {
#ifdef CDBP_OBS_OFF
  GTEST_SKIP() << "observability compiled out";
#else
  const Instance in = make_test_instance(5, /*items=*/60);
  std::vector<ShardTask> tasks(5, ShardTask{"ff", make_ff, &in, {}});
  ShardedSimOptions opts;
  opts.threads = 2;
  const ShardedSimReport report = run_sharded(tasks, opts);
  ASSERT_EQ(report.shard_run_us.size(), report.shards);
  std::uint64_t total = 0;
  for (const auto& h : report.shard_run_us) total += h.count;
  EXPECT_EQ(total, tasks.size());  // interval delta: this batch only
  EXPECT_EQ(report.merged_run_us.count, tasks.size());
  EXPECT_GE(report.merged_run_us.max, report.merged_run_us.min);
#endif
}

TEST(ShardedSim, MalformedTasksRejected) {
  const Instance in = make_test_instance(6, /*items=*/20);
  ShardedSimOptions opts;
  opts.threads = 1;
  {
    std::vector<ShardTask> tasks;
    tasks.push_back({"no-algo", nullptr, &in, {}});
    EXPECT_THROW((void)run_sharded(tasks, opts), std::invalid_argument);
  }
  {
    std::vector<ShardTask> tasks;
    tasks.push_back({"no-input", make_ff, nullptr, {}});
    EXPECT_THROW((void)run_sharded(tasks, opts), std::invalid_argument);
  }
  {
    std::vector<ShardTask> tasks;
    tasks.push_back({"both-inputs", make_ff, &in, "x.csv"});
    EXPECT_THROW((void)run_sharded(tasks, opts), std::invalid_argument);
  }
}

}  // namespace
}  // namespace cdbp::parallel
