#include "parallel/rng.h"
#include "parallel/thread_pool.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace cdbp::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i)
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  pool.stop();
  EXPECT_EQ(pool.thread_count(), 0u);
  EXPECT_THROW((void)pool.submit([] { return 0; }), std::runtime_error);
}

TEST(ThreadPool, StopIsIdempotentAndDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i)
    futs.push_back(pool.submit([&done] { done.fetch_add(1); }));
  pool.stop();
  pool.stop();  // second stop is a no-op
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 64);  // stop() drains, it does not drop
}

TEST(ThreadPool, TaskLatencyMetricsEmitted) {
#ifdef CDBP_OBS_OFF
  GTEST_SKIP() << "observability compiled out";
#else
  const auto histogram_count = [](const obs::MetricsSnapshot& snap,
                                  const std::string& name) -> std::uint64_t {
    for (const auto& [n, h] : snap.histograms)
      if (n == name) return h.count;
    return 0;
  };
  const auto before = obs::MetricsRegistry::global().snapshot();
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 16; ++i) futs.push_back(pool.submit([] {}));
    for (auto& f : futs) f.get();
  }
  const auto after = obs::MetricsRegistry::global().snapshot();
  for (const char* name :
       {"pool.task_latency_us", "pool.task_run_us", "pool.queue_wait_us"})
    EXPECT_GE(histogram_count(after, name),
              histogram_count(before, name) + 16u)
        << name;
#endif
}

TEST(ParallelFor, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 10, 90, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, FirstExceptionRethrown) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 64,
                            [](std::size_t i) {
                              if (i == 13) throw std::logic_error("13");
                            }),
               std::logic_error);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<std::size_t>(
      pool, 50, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, ExceptionPropagatesThroughFutures) {
  ThreadPool pool(4);
  EXPECT_THROW((void)parallel_map<int>(pool, 32,
                                       [](std::size_t i) -> int {
                                         if (i == 17)
                                           throw std::domain_error("17");
                                         return static_cast<int>(i);
                                       }),
               std::domain_error);
}

TEST(Rng, SplitMixDeterministicAndSpreads) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(Rng, TaskRngIndependentOfScheduling) {
  // The rng for (seed, index) is a pure function — bit-identical draws.
  auto a = task_rng(99, 7);
  auto b = task_rng(99, 7);
  for (int k = 0; k < 16; ++k) EXPECT_EQ(a(), b());
  auto c = task_rng(99, 8);
  EXPECT_NE(task_rng(99, 7)(), c());
}

TEST(Rng, ParallelDrawsMatchSerialDraws) {
  ThreadPool pool(8);
  const std::uint64_t seed = 1234;
  std::vector<std::uint64_t> serial(64);
  for (std::size_t i = 0; i < serial.size(); ++i)
    serial[i] = task_rng(seed, i)();
  const auto parallel = parallel_map<std::uint64_t>(
      pool, 64, [seed](std::size_t i) { return task_rng(seed, i)(); });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace cdbp::parallel
