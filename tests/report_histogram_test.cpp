#include "report/histogram.h"

#include <gtest/gtest.h>

namespace cdbp::report {
namespace {

TEST(Histogram, EmptyInput) {
  EXPECT_EQ(histogram({}), "(no data)\n");
}

TEST(Histogram, CountsSumToSampleSize) {
  const std::vector<double> values = {0.0, 0.1, 0.5, 0.9, 1.0, 1.0, 0.49};
  const std::string h = histogram(values, HistogramOptions{.bins = 4});
  // 4 rows, each showing a count; parse the counts back.
  std::istringstream is(h);
  std::string line;
  int rows = 0;
  long total = 0;
  while (std::getline(is, line)) {
    ++rows;
    const auto bar = line.find('|');
    ASSERT_NE(bar, std::string::npos);
    const auto close = line.find(')');
    total += std::stol(line.substr(close + 1, bar - close - 1));
  }
  EXPECT_EQ(rows, 4);
  EXPECT_EQ(total, static_cast<long>(values.size()));
}

TEST(Histogram, ConstantValuesLandInOneBin) {
  const std::string h =
      histogram({3.0, 3.0, 3.0}, HistogramOptions{.bins = 5});
  EXPECT_NE(h.find(" 3 |"), std::string::npos);
}

TEST(Histogram, PeakBinHasFullWidthBar) {
  const std::string h = histogram({0.0, 0.0, 0.0, 10.0},
                                  HistogramOptions{.bins = 2, .width = 8});
  EXPECT_NE(h.find(std::string(8, '#')), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW((void)histogram({1.0}, HistogramOptions{.bins = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)histogram({1.0}, HistogramOptions{.bins = 4, .width = 0}),
               std::invalid_argument);
}

TEST(Histogram, MaxValueFallsInLastBin) {
  const std::string h =
      histogram({0.0, 1.0}, HistogramOptions{.bins = 2, .width = 4});
  std::istringstream is(h);
  std::string first, second;
  std::getline(is, first);
  std::getline(is, second);
  EXPECT_NE(first.find("1 |"), std::string::npos);
  EXPECT_NE(second.find("1 |"), std::string::npos);
}

}  // namespace
}  // namespace cdbp::report
