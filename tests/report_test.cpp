#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "algos/cdff.h"
#include "core/simulator.h"
#include "report/ascii_chart.h"
#include "report/csv.h"
#include "report/table.h"
#include "test_util.h"
#include "workloads/binary_input.h"

namespace cdbp::report {
namespace {

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"algo", "mu", "ratio"});
  t.add_row({"HA", "256", "1.52"});
  t.add_row({"FirstFit", "256", "3.10"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("FirstFit"), std::string::npos);
  EXPECT_NE(s.find("ratio"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Every line has equal length (alignment).
  std::istringstream is(s);
  std::string line;
  std::size_t len = 0;
  bool first = true;
  while (std::getline(is, line)) {
    // Rows are padded; the rule line sets the width.
    if (first) {
      len = line.size();
      first = false;
    }
    EXPECT_LE(line.size(), len + 2);
  }
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(LineChart, RendersSeriesAndLegend) {
  Series s1{"HA", {{4.0, 1.0}, {16.0, 1.5}, {256.0, 2.0}}};
  Series s2{"FF", {{4.0, 1.2}, {16.0, 2.5}, {256.0, 5.0}}};
  const std::string chart = line_chart({s1, s2}, 40, 10, true);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("HA"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

TEST(LineChart, EmptyData) {
  EXPECT_EQ(line_chart({}, 40, 10, false), "(no data)\n");
}

TEST(LineChart, SinglePointDoesNotCrash) {
  Series s{"x", {{2.0, 1.0}}};
  EXPECT_FALSE(line_chart({s}).empty());
}

TEST(Gantt, InstanceViewShowsAllItems) {
  const Instance in = testutil::make_instance({
      {0.0, 8.0, 0.25},
      {2.0, 4.0, 0.5},
  });
  const std::string g = instance_gantt(in, 2.0);
  EXPECT_NE(g.find('='), std::string::npos);
  // Two item rows.
  EXPECT_EQ(std::count(g.begin(), g.end(), '\n'), 2);
}

TEST(Gantt, PackingViewGroupsBins) {
  const Instance in = workloads::make_binary_input(3);
  algos::Cdff cdff;
  const RunResult r = Simulator{}.run(in, cdff);
  const std::string g = packing_gantt(in, r, 2.0);
  EXPECT_NE(g.find("group"), std::string::npos);
  EXPECT_NE(g.find("bin"), std::string::npos);
  EXPECT_NE(g.find("span="), std::string::npos);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdbp_csv_test.csv").string();
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "x,y"});
    EXPECT_THROW(w.add_row({"too", "many", "cols"}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "a,b\n1,\"x,y\"\n");
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace cdbp::report
