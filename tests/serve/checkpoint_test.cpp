#include "core/checkpoint.h"

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "test_util.h"
#include "workloads/aligned_random.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

TEST(Crc32, MatchesIeeeCheckValue) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(s.data(), s.size()), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  // Chaining over a split equals one pass over the whole.
  const std::uint32_t part = crc32(s.data(), 4);
  EXPECT_EQ(crc32(s.data() + 4, 5, part), 0xCBF43926u);
}

TEST(StateCodec, RoundTripsEveryFieldType) {
  StateWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(0.1);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(std::numeric_limits<double>::denorm_min());
  w.str("tenant/42");
  w.str("");

  StateReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 0.1);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.str(), "tenant/42");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(StateCodec, UnderrunThrows) {
  StateWriter w;
  w.u32(7);
  StateReader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW((void)r.u8(), std::runtime_error);
  StateReader r2(w.buffer());
  EXPECT_THROW((void)r2.u64(), std::runtime_error);
}

// --- Session + algorithm state round-trips ------------------------------

/// Feeds `instance` items [0, cut) into a live session, snapshots it,
/// restores into a fresh session+algorithm, then feeds [cut, n) into BOTH
/// and requires bit-identical decisions and final costs.
void check_mid_stream_roundtrip(const testutil::NamedFactory& factory,
                                const Instance& instance, std::size_t cut) {
  const AlgorithmPtr algo_a = factory.make();
  auto* ckpt_a = dynamic_cast<Checkpointable*>(algo_a.get());
  ASSERT_NE(ckpt_a, nullptr) << factory.name << " is not Checkpointable";
  InteractiveSession a(*algo_a);
  for (std::size_t i = 0; i < cut; ++i) {
    const Item& it = instance[i];
    a.offer(it.arrival, it.departure, it.size);
  }

  StateWriter w;
  a.save_state(w);
  ckpt_a->save_state(w);

  const AlgorithmPtr algo_b = factory.make();
  auto* ckpt_b = dynamic_cast<Checkpointable*>(algo_b.get());
  InteractiveSession b(*algo_b);
  StateReader r(w.buffer());
  b.load_state(r);
  ckpt_b->load_state(r);
  EXPECT_TRUE(r.at_end()) << factory.name << ": trailing state bytes";

  for (std::size_t i = cut; i < instance.size(); ++i) {
    const Item& it = instance[i];
    const BinId bin_a = a.offer(it.arrival, it.departure, it.size);
    const BinId bin_b = b.offer(it.arrival, it.departure, it.size);
    ASSERT_EQ(bin_b, bin_a)
        << factory.name << ": diverged at item " << i << " (cut " << cut
        << ")";
  }
  const Cost cost_a = a.finish();
  const Cost cost_b = b.finish();
  EXPECT_EQ(cost_b, cost_a) << factory.name << ": costs differ";
  EXPECT_EQ(b.open_bins(), a.open_bins());
}

TEST(Checkpoint, MidStreamRoundTripOnGeneralInputs) {
  std::mt19937_64 rng(11);
  workloads::GeneralConfig cfg;
  cfg.target_items = 120;
  cfg.log2_mu = 5;
  cfg.horizon = 64.0;
  const Instance instance = workloads::make_general_random(cfg, rng);
  ASSERT_GE(instance.size(), 40u);
  for (const auto& factory : testutil::online_factories())
    for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                  instance.size() / 2, instance.size() - 1})
      check_mid_stream_roundtrip(factory, instance, cut);
}

TEST(Checkpoint, MidStreamRoundTripOnAlignedInputs) {
  std::mt19937_64 rng(13);
  workloads::AlignedConfig cfg;
  cfg.n = 5;
  cfg.max_bucket = 5;
  const Instance instance = workloads::make_aligned_random(cfg, rng);
  ASSERT_GE(instance.size(), 20u);
  for (const auto& factory : testutil::aligned_factories())
    for (const std::size_t cut : {std::size_t{1}, instance.size() / 2})
      check_mid_stream_roundtrip(factory, instance, cut);
}

TEST(Checkpoint, LoadIntoUsedSessionThrows) {
  algos::FirstFit ff;
  InteractiveSession fresh(ff);
  StateWriter w;
  fresh.save_state(w);

  algos::FirstFit ff2;
  InteractiveSession used(ff2);
  used.offer(0.0, 1.0, 0.5);
  StateReader r(w.buffer());
  EXPECT_THROW(used.load_state(r), std::logic_error);
}

TEST(Checkpoint, TruncatedSessionStateThrows) {
  algos::FirstFit ff;
  InteractiveSession a(ff);
  a.offer(0.0, 2.0, 0.5);
  a.offer(1.0, 3.0, 0.25);
  StateWriter w;
  a.save_state(w);

  algos::FirstFit ff2;
  InteractiveSession b(ff2);
  StateReader r(std::string_view(w.buffer()).substr(0, w.size() - 3));
  EXPECT_THROW(b.load_state(r), std::runtime_error);
}

TEST(Checkpoint, LedgerRestoreReproducesIndexDecisions) {
  // After restore, indexed bin selection must see the same candidate set:
  // place items that leave several partially-filled bins, snapshot, then
  // offer a probe that fits only one specific bin.
  algos::BestFit bf;
  InteractiveSession a(bf);
  a.offer(0.0, 10.0, 0.7);   // bin 0 at 0.7
  a.offer(0.0, 10.0, 0.5);   // bin 1 at 0.5
  a.offer(0.0, 10.0, 0.55);  // bin 2 at 0.55
  StateWriter w;
  a.save_state(w);
  dynamic_cast<Checkpointable&>(bf).save_state(w);

  algos::BestFit bf2;
  InteractiveSession b(bf2);
  StateReader r(w.buffer());
  b.load_state(r);
  dynamic_cast<Checkpointable&>(bf2).load_state(r);

  // Best-Fit: 0.3 goes to the fullest bin that fits = bin 0.
  EXPECT_EQ(a.offer(1.0, 5.0, 0.3), b.offer(1.0, 5.0, 0.3));
  // 0.45 no longer fits bin 0 (1.0) — best fit is bin 2 (0.55).
  EXPECT_EQ(a.offer(2.0, 5.0, 0.45), 2);
  EXPECT_EQ(b.offer(2.0, 5.0, 0.45), 2);
  EXPECT_EQ(a.finish(), b.finish());
}

}  // namespace
}  // namespace cdbp
