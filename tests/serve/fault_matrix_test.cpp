// The chaos matrix (tier-1 slice): deterministic fault schedules swept
// over the serve plane's I/O op stream, checking that every acked offer
// survives power loss, that recovery reproduces the reference outcome (or
// refuses cleanly), and that transient noise is absorbed. Fixed seeds here;
// `cdbp chaos --random N` soaks arbitrary seeds in CI and prints the seed
// on failure so any escape reproduces with `cdbp chaos --seeds <seed>`.
#include "serve/chaos.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "core/io_env.h"
#include "serve/durable_session.h"
#include "serve/shard_router.h"
#include "serve/stats_exporter.h"
#include "workloads/general_random.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_fault_matrix_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

Instance instance_for(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  workloads::GeneralConfig cfg;
  cfg.target_items = n;
  cfg.log2_mu = 5;
  cfg.horizon = 64.0;
  return workloads::make_general_random(cfg, rng);
}

TEST_F(FaultMatrixTest, MatrixPassesOnFixedSeeds) {
  ChaosConfig cfg;
  cfg.dir = path("matrix");
  cfg.seeds = {1, 2};
  cfg.make_algo = [] { return cli::make_algorithm("ff"); };
  cfg.algo_name = "ff";
  cfg.offers = 32;
  cfg.checkpoint_every = 10;
  cfg.wal_segment_bytes = 512;
  cfg.max_points_per_kind = 10;
  const ChaosReport report = run_chaos_matrix(cfg);
  EXPECT_GT(report.cases, 0u);
  EXPECT_GT(report.faulted, 0u) << "the sweep must actually inject faults";
  EXPECT_GT(report.recoveries, 0u) << "hard faults must exercise recovery";
  EXPECT_GT(report.transparent, 0u);
  for (const ChaosFailure& f : report.failures)
    ADD_FAILURE() << "chaos violation: seed " << f.seed << " fault "
                  << f.fault << " at op " << f.op << ": " << f.detail
                  << "  (reproduce: cdbp chaos --seeds "
                  << f.seed << ")";
}

TEST_F(FaultMatrixTest, MatrixRejectsBadConfig) {
  ChaosConfig cfg;
  cfg.dir = path("bad");
  EXPECT_THROW((void)run_chaos_matrix(cfg), std::invalid_argument);  // no algo
  cfg.make_algo = [] { return cli::make_algorithm("ff"); };
  cfg.seeds.clear();
  EXPECT_THROW((void)run_chaos_matrix(cfg), std::invalid_argument);
}

/// Sweeps a power cut over every operation touching `path_contains` (the
/// publish window of a tmp -> fsync -> rename -> dir-fsync sequence) and
/// checks recover-and-continue lands on the reference outcome each time.
/// This is the torn-rename acceptance: at no cut point may the published
/// file pair inconsistently with the WAL.
void sweep_power_cut_over(const std::string& scratch,
                          const std::string& path_contains,
                          std::uint64_t segment_bytes,
                          std::uint64_t checkpoint_every) {
  const Instance instance = instance_for(21, 24);
  const auto session_config = [&](const std::string& dir, bool resume,
                                  io::Env* env) {
    DurableSessionConfig sc;
    sc.wal_path = dir + "/t.wal";
    sc.checkpoint_path = dir + "/t.ckpt";
    sc.fsync = FsyncPolicy::kEvery;
    sc.checkpoint_every = checkpoint_every;
    sc.wal_segment_bytes = segment_bytes;
    sc.resume = resume;
    sc.env = env;
    return sc;
  };

  // Reference run + profile of how many ops touch the publish window.
  const std::string ref_dir = scratch + "/ref";
  fs::create_directories(ref_dir);
  std::vector<BinId> ref_bins;
  Cost ref_cost = 0.0;
  std::uint64_t window_ops = 0;
  {
    io::FaultInjectingEnv env(io::Env::posix());
    env.set_record_history(true);
    DurableSession s(cli::make_algorithm("ff"), "ff",
                     session_config(ref_dir, false, &env));
    for (std::size_t i = 0; i < instance.size(); ++i) {
      const Item& it = instance[i];
      ref_bins.push_back(s.offer(it.arrival, it.departure, it.size, i + 1));
    }
    ref_cost = s.finish();
    s.close();
    for (const io::OpRecord& rec : env.history())
      if (rec.path.find(path_contains) != std::string::npos) ++window_ops;
  }
  ASSERT_GT(window_ops, 0u) << "no ops touched '" << path_contains
                            << "' — the sweep would be vacuous";

  for (std::uint64_t cut = 0; cut < window_ops; ++cut) {
    const std::string dir = scratch + "/cut";
    fs::remove_all(dir);
    fs::create_directories(dir);
    io::FaultInjectingEnv env(io::Env::posix());
    io::FaultRule rule;
    rule.ops = io::kOpAll;
    rule.path_contains = path_contains;
    rule.after = cut;
    rule.kind = io::FaultKind::kPowerCut;
    env.add_rule(rule);

    std::size_t acked = 0;
    try {
      DurableSession s(cli::make_algorithm("ff"), "ff",
                       session_config(dir, false, &env));
      for (std::size_t i = 0; i < instance.size(); ++i) {
        const Item& it = instance[i];
        ASSERT_EQ(s.offer(it.arrival, it.departure, it.size, i + 1),
                  ref_bins[i])
            << "acked placement diverged before the cut (cut " << cut << ")";
        ++acked;
      }
      (void)s.finish();
      s.close();
    } catch (const std::exception&) {
      // Crashed inside (or downstream of) the publish window — expected.
    }
    env.clear_rules();
    env.simulate_power_loss();

    DurableSession rec(cli::make_algorithm("ff"), "ff",
                       session_config(dir, true, &env));
    ASSERT_GE(rec.seq(), acked) << "acked offer lost at cut " << cut;
    for (std::size_t i = 0; i < instance.size(); ++i) {
      if (i + 1 <= rec.last_stream_index()) continue;
      const Item& it = instance[i];
      ASSERT_EQ(rec.offer(it.arrival, it.departure, it.size, i + 1),
                ref_bins[i])
          << "post-recovery placement diverged at cut " << cut;
    }
    EXPECT_EQ(rec.finish(), ref_cost)
        << "post-recovery cost diverged at cut " << cut;
    rec.close();
  }
}

TEST_F(FaultMatrixTest, PowerCutAtEveryCheckpointPublishStep) {
  // checkpoint_every=8 over 24 offers: three publishes, each a full
  // tmp -> write -> fsync -> rename sequence on the .ckpt path.
  sweep_power_cut_over(path("ckpt"), ".ckpt", /*segment_bytes=*/0,
                       /*checkpoint_every=*/8);
}

TEST_F(FaultMatrixTest, PowerCutAtEveryManifestUpdateStep) {
  // Tiny segments force rotations (and, with checkpoints, compaction):
  // every manifest rewrite's tmp/fsync/rename steps get a cut.
  sweep_power_cut_over(path("manifest"), ".manifest", /*segment_bytes=*/256,
                       /*checkpoint_every=*/8);
}

TEST_F(FaultMatrixTest, DegradedShardRejectsWhileHealthyShardsServe) {
  io::FaultInjectingEnv env(io::Env::posix());
  RouterConfig cfg;
  cfg.wal_dir = path("router");
  cfg.shards = 2;
  cfg.queue_capacity = 64;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.fsync = FsyncPolicy::kEvery;
  cfg.env = &env;
  ShardRouter router(cfg, [] { return cli::make_algorithm("ff"); }, "ff");

  // Find one tenant per shard.
  std::string sick_tenant, healthy_tenant;
  for (int i = 0; sick_tenant.empty() || healthy_tenant.empty(); ++i) {
    const std::string t = "tenant-" + std::to_string(i);
    (router.shard_of(t) == 0 ? sick_tenant : healthy_tenant) = t;
    ASSERT_LT(i, 1000);
  }

  // Rule added AFTER construction so shard creation I/O stays clean: from
  // now on every fsync of a shard-0 file fails EIO and stays poisoned.
  io::FaultRule rule;
  rule.ops = io::kOpFsync;
  rule.path_contains = "shard-0";
  rule.kind = io::FaultKind::kStickyFsync;
  rule.repeat = true;
  env.add_rule(rule);

  const auto request = [](const std::string& tenant, std::uint64_t idx) {
    ServeRequest req;
    req.tenant = tenant;
    req.stream_index = idx;
    req.arrival = static_cast<double>(idx);
    req.departure = static_cast<double>(idx) + 8.0;
    req.size = 0.25;
    return req;
  };

  // First wave: shard 0's first commit hits the poisoned fsync and flips
  // the shard; shard 1 keeps serving.
  std::uint64_t idx = 1;
  for (int i = 0; i < 8; ++i) {
    (void)router.try_submit(request(sick_tenant, idx++));
    ASSERT_EQ(router.try_submit(request(healthy_tenant, idx++)),
              SubmitStatus::kAccepted);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.degraded_shards() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(router.degraded_shards(), 1u)
      << "sticky fsync failure must degrade shard 0";

  // Degraded shard rejects distinctly — and does NOT block, even under
  // kBlock admission; the healthy shard is untouched.
  EXPECT_EQ(router.try_submit(request(sick_tenant, idx++)),
            SubmitStatus::kShardDegraded);
  EXPECT_FALSE(router.submit(request(sick_tenant, idx++)));
  EXPECT_EQ(router.try_submit(request(healthy_tenant, idx++)),
            SubmitStatus::kAccepted);

  // stop() must not throw: the failure was absorbed as degradation.
  router.stop();
  const ShardStats& sick = router.stats(0);
  const ShardStats& healthy = router.stats(1);
  EXPECT_TRUE(sick.degraded);
  EXPECT_FALSE(sick.degrade_reason.empty());
  EXPECT_EQ(sick.applied, 0u) << "nothing was acked after the first "
                                 "commit failed";
  EXPECT_FALSE(healthy.degraded);
  EXPECT_GT(healthy.applied, 0u);
  for (const ServeResult& r : router.results())
    EXPECT_EQ(r.shard, 1u) << "only healthy-shard acks may be visible";
}

TEST_F(FaultMatrixTest, StatsExporterSweepsStaleTmpAndSurvivesRenameFaults) {
  const std::string base = path("stats");
  // Stale tmp files from a "previous crashed run".
  {
    io::Env& posix = io::Env::posix();
    for (const char* ext : {".prom.tmp", ".json.tmp"}) {
      auto f = io::open_file(posix, base + ext, io::OpenMode::kTruncate);
      io::write_all(*f, "stale", 5, base + ext);
      int err = 0;
      ASSERT_EQ(f->close(err), 0);
    }
  }
  io::FaultInjectingEnv env(io::Env::posix());
  io::FaultRule rule;
  rule.ops = io::kOpRename;
  rule.path_contains = ".prom";
  rule.kind = io::FaultKind::kEio;
  rule.repeat = true;
  env.add_rule(rule);

  StatsExporterConfig cfg;
  cfg.out_base = base;
  cfg.interval_ms = 0;  // only explicit dumps
  cfg.env = &env;
  {
    StatsExporter exporter(cfg);
    EXPECT_FALSE(env.exists(base + ".prom.tmp")) << "stale tmp not swept";
    EXPECT_FALSE(env.exists(base + ".json.tmp")) << "stale tmp not swept";
    // Direct dump propagates the publish failure to the caller...
    EXPECT_THROW(exporter.dump_now(), std::runtime_error);
    // ...but never leaks the tmp page next to the dead rename.
    EXPECT_FALSE(env.exists(base + ".prom.tmp"))
        << "failed rename must unlink its tmp";
    env.clear_rules();
    exporter.dump_now();
    EXPECT_TRUE(env.exists(base + ".prom"));
    EXPECT_TRUE(env.exists(base + ".json"));
  }
}

TEST_F(FaultMatrixTest, StatsExporterLoopAbsorbsDumpFailures) {
  io::FaultInjectingEnv env(io::Env::posix());
  io::FaultRule rule;
  rule.ops = io::kOpOpen | io::kOpWrite | io::kOpRename;
  rule.path_contains = "stats";
  rule.kind = io::FaultKind::kEio;
  rule.repeat = true;
  env.add_rule(rule);

  StatsExporterConfig cfg;
  cfg.out_base = path("stats");
  cfg.interval_ms = 1;  // dump as fast as the poll tick allows
  cfg.env = &env;
  StatsExporter exporter(cfg);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  // Pre-fix, the first background dump's exception escaped the loop thread
  // and std::terminate'd the process. Now it is counted and absorbed.
  while (exporter.dump_errors() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(exporter.dump_errors(), 0u);
  env.clear_rules();
  EXPECT_NO_THROW(exporter.stop());  // final dump succeeds, faults cleared
  EXPECT_GT(exporter.dumps(), 0u);
}

/// EINTR-storm regression for the audited call sites (satellite: every raw
/// write/fsync/read path must retry EINTR): a storm across every retryable
/// op class while a session runs must be fully transparent.
TEST_F(FaultMatrixTest, EintrStormAcrossSessionIsTransparent) {
  const Instance instance = instance_for(5, 20);
  const auto run = [&](io::Env* env, const std::string& tag) {
    DurableSessionConfig sc;
    sc.wal_path = path(tag) + "/s.wal";
    sc.checkpoint_path = path(tag) + "/s.ckpt";
    sc.fsync = FsyncPolicy::kEvery;
    sc.checkpoint_every = 6;
    sc.wal_segment_bytes = 256;
    sc.env = env;
    fs::create_directories(path(tag));
    DurableSession s(cli::make_algorithm("ff"), "ff", sc);
    for (std::size_t i = 0; i < instance.size(); ++i) {
      const Item& it = instance[i];
      (void)s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    const Cost cost = s.finish();
    s.close();
    return cost;
  };
  const Cost ref = run(nullptr, "ref");

  io::FaultInjectingEnv env(io::Env::posix());
  io::ChaosProfile profile;
  profile.seed = 11;
  profile.eintr_rate = 0.35;
  profile.short_write_rate = 0.25;
  env.enable_chaos(profile);
  EXPECT_EQ(run(&env, "storm"), ref);
  EXPECT_GT(env.faults_injected(), 0u) << "the storm must actually fire";
}

}  // namespace
}  // namespace cdbp::serve
