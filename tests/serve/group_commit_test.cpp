// Group-commit semantics: one fsync round serves many waiters, failures
// are sticky, and — the durability contract the whole design rides on — an
// offer acknowledged under fsync=every survives a crash that drops every
// byte the kernel had not yet been told to sync.
#include "serve/group_commit.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "serve/durable_session.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

/// A syncable whose sync_file() blocks until released, so a test can hold
/// a commit round open while more waiters pile up.
class GatedSync final : public WalSyncable {
 public:
  void sync_file() override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++syncs_;
    entered_.notify_all();
    gate_.wait(lock, [&] { return open_; });
  }

  void wait_until_syncing() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_.wait(lock, [&] { return syncs_ > 0; });
  }

  void open_gate() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    gate_.notify_all();
  }

  [[nodiscard]] int syncs() {
    std::lock_guard<std::mutex> lock(mutex_);
    return syncs_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_;
  std::condition_variable gate_;
  int syncs_ = 0;
  bool open_ = false;
};

class ThrowingSync final : public WalSyncable {
 public:
  void sync_file() override {
    ++attempts;
    throw std::runtime_error("simulated fsync failure");
  }
  std::atomic<int> attempts{0};
};

TEST(GroupCommitTest, OneRoundReleasesAllWaitersThatArrivedDuringAFsync) {
  GroupCommitCoordinator gc;
  GatedSync target;

  // Waiter A enters round 1, whose fsync we hold open at the gate.
  std::thread a([&] { gc.sync_and_wait(target); });
  target.wait_until_syncing();

  // B, C, D register while round 1's fsync is in flight: they must all be
  // served by ONE follow-up round — the fsync itself is the batching
  // window.
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i)
    waiters.emplace_back([&] {
      gc.sync_and_wait(target);
      ++done;
    });
  // Registration is the first thing sync_and_wait does; give the three
  // threads ample time to get there before releasing the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(done.load(), 0) << "no waiter may be released before its fsync";

  target.open_gate();
  a.join();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(done.load(), 3);
  // Round 1 (waiter A) + one merged round for B, C, D.
  EXPECT_EQ(target.syncs(), 2) << "3 concurrent waiters must share a round";
  EXPECT_EQ(gc.syncs(), 2u);
  EXPECT_GE(gc.rounds(), 2u);
}

TEST(GroupCommitTest, FsyncFailureIsStickyAndNeverRetried) {
  GroupCommitCoordinator gc;
  ThrowingSync target;
  EXPECT_THROW(gc.sync_and_wait(target), std::runtime_error);
  EXPECT_EQ(target.attempts.load(), 1);
  // The first failure may have lost dirty pages: the coordinator must
  // rethrow without touching the file again, not "retry and succeed".
  EXPECT_THROW(gc.sync_and_wait(target), std::runtime_error);
  EXPECT_EQ(target.attempts.load(), 1);
}

TEST(GroupCommitTest, IndependentTargetsCommitInOneRound) {
  GroupCommitCoordinator gc;
  GatedSync blocker;
  std::thread a([&] { gc.sync_and_wait(blocker); });
  blocker.wait_until_syncing();

  // Two different shards' WALs dirty while a round is in flight: the next
  // round fsyncs each exactly once.
  GatedSync s1, s2;
  s1.open_gate();
  s2.open_gate();
  std::thread b([&] { gc.sync_and_wait(s1); });
  std::thread c([&] { gc.sync_and_wait(s2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  blocker.open_gate();
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(s1.syncs(), 1);
  EXPECT_EQ(s2.syncs(), 1);
}

// The acceptance-criteria crash test, in-process: every offer ACKED under
// fsync=every (through the group-commit path) must survive a simulated
// power loss that truncates each WAL file to its fsync watermark — the
// bytes the page cache would have lost. kNone, as a control, loses data
// under the same simulation, proving the simulator has teeth.
class GroupCommitDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_group_commit_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Copies the session's WAL chain into `crash_dir`, truncating every
  /// segment to its durability watermark: exactly what a kill -9 plus
  /// page-cache loss leaves behind.
  void simulate_power_loss(const DurableSession& s,
                           const fs::path& crash_dir) const {
    fs::remove_all(crash_dir);
    fs::create_directories(crash_dir);
    const std::string manifest =
        s.wal()->base() + ".manifest";  // durably written at every rewrite
    if (fs::exists(manifest))
      fs::copy_file(manifest,
                    crash_dir / fs::path(manifest).filename());
    for (const auto& [path, watermark] : s.wal()->synced_watermarks()) {
      const fs::path dst = crash_dir / fs::path(path).filename();
      fs::copy_file(path, dst);
      if (fs::file_size(dst) > watermark) fs::resize_file(dst, watermark);
    }
  }

  fs::path dir_;
};

TEST_F(GroupCommitDurabilityTest, AckedOfferSurvivesDroppedUnsyncedBytes) {
  GroupCommitCoordinator gc;
  DurableSessionConfig cfg;
  cfg.wal_path = (dir_ / "live.wal").string();
  cfg.checkpoint_path = (dir_ / "live.ckpt").string();
  cfg.fsync = FsyncPolicy::kEvery;
  cfg.group_commit = &gc;
  cfg.wal_segment_bytes = 256;  // cross rotation boundaries too
  DurableSession s(cli::make_algorithm("ff"), "ff", cfg);

  for (std::uint64_t i = 0; i < 20; ++i) {
    // offer() returning IS the acknowledgement under kEvery.
    s.offer(0.5 * static_cast<double>(i),
            0.5 * static_cast<double>(i) + 4.0, 0.25, i + 1);
    const fs::path crash_dir = dir_ / ("crash" + std::to_string(i));
    simulate_power_loss(s, crash_dir);

    DurableSessionConfig rc;
    rc.wal_path = (crash_dir / "live.wal").string();
    rc.checkpoint_path = (crash_dir / "live.ckpt").string();
    rc.resume = true;
    rc.wal_segment_bytes = 256;
    DurableSession rec(cli::make_algorithm("ff"), "ff", rc);
    EXPECT_EQ(rec.seq(), i + 1)
        << "offer " << i << " was acked but did not survive the crash";
    EXPECT_EQ(rec.last_stream_index(), i + 1);
  }
}

TEST_F(GroupCommitDurabilityTest, ControlWithoutFsyncLosesUnsyncedBytes) {
  DurableSessionConfig cfg;
  cfg.wal_path = (dir_ / "lossy.wal").string();
  cfg.checkpoint_path = (dir_ / "lossy.ckpt").string();
  cfg.fsync = FsyncPolicy::kNone;
  DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
  for (std::uint64_t i = 0; i < 8; ++i)
    s.offer(0.5 * static_cast<double>(i),
            0.5 * static_cast<double>(i) + 4.0, 0.25, i + 1);

  const fs::path crash_dir = dir_ / "crash";
  simulate_power_loss(s, crash_dir);
  DurableSessionConfig rc;
  rc.wal_path = (crash_dir / "lossy.wal").string();
  rc.checkpoint_path = (crash_dir / "lossy.ckpt").string();
  rc.resume = true;
  DurableSession rec(cli::make_algorithm("ff"), "ff", rc);
  EXPECT_LT(rec.seq(), 8u)
      << "the power-loss simulation failed to drop unsynced bytes — the "
         "durability assertions above prove nothing";
}

}  // namespace
}  // namespace cdbp::serve
