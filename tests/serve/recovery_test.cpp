// The tentpole acceptance suite: a DurableSession killed at a random cut
// point and recovered (checkpoint + WAL tail replay) must continue
// BIT-IDENTICALLY with the uninterrupted session — same remaining
// placements, same final MinUsageTime cost — for every checkpointable
// algorithm, on general and aligned inputs, across seeds.
#include "serve/durable_session.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "workloads/aligned_random.h"
#include "workloads/general_random.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_recovery_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] DurableSessionConfig config(const std::string& tag,
                                            bool resume,
                                            std::uint64_t ckpt_every) const {
    DurableSessionConfig cfg;
    cfg.wal_path = (dir_ / (tag + ".wal")).string();
    cfg.checkpoint_path = (dir_ / (tag + ".ckpt")).string();
    cfg.fsync = FsyncPolicy::kNone;  // same-process test: durability moot
    cfg.checkpoint_every = ckpt_every;
    cfg.resume = resume;
    return cfg;
  }

  fs::path dir_;
};

Instance general_instance(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  workloads::GeneralConfig cfg;
  cfg.target_items = 110;
  cfg.log2_mu = 5;
  cfg.horizon = 64.0;
  return workloads::make_general_random(cfg, rng);
}

Instance aligned_instance(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  workloads::AlignedConfig cfg;
  cfg.n = 5;
  cfg.max_bucket = 5;
  return workloads::make_aligned_random(cfg, rng);
}

/// Reference run -> crash at `cut` -> recover -> continue; compare
/// everything. `checkpoint_every` = 7 exercises the checkpoint path as
/// soon as cut >= 7 and the tail-replay path below it.
void check_crash_recovery(const std::string& algo_name,
                          const Instance& instance, std::size_t cut,
                          const DurableSessionConfig& ref_cfg,
                          const DurableSessionConfig& crash_cfg,
                          const DurableSessionConfig& resume_cfg) {
  ASSERT_LT(cut, instance.size());

  std::vector<BinId> ref_bins;
  Cost ref_cost = 0.0;
  {
    DurableSession ref(cli::make_algorithm(algo_name), algo_name, ref_cfg);
    for (std::size_t i = 0; i < instance.size(); ++i) {
      const Item& it = instance[i];
      ref_bins.push_back(ref.offer(it.arrival, it.departure, it.size, i + 1));
    }
    ref_cost = ref.finish();
    ref.close();
  }

  {
    // The "crashed" run: feed a prefix, then drop the session without any
    // orderly shutdown beyond closing the fd (appends go straight to the
    // file, so the on-disk state is what a kill -9 would leave).
    DurableSession crash(cli::make_algorithm(algo_name), algo_name,
                         crash_cfg);
    for (std::size_t i = 0; i < cut; ++i) {
      const Item& it = instance[i];
      ASSERT_EQ(crash.offer(it.arrival, it.departure, it.size, i + 1),
                ref_bins[i])
          << algo_name << ": prefix diverged at " << i;
    }
  }

  DurableSession rec(cli::make_algorithm(algo_name), algo_name, resume_cfg);
  const RecoveryReport& rep = rec.recovery();
  EXPECT_TRUE(rep.wal_existed);
  EXPECT_EQ(rec.seq(), cut) << algo_name;
  EXPECT_EQ(rec.last_stream_index(), cut);
  EXPECT_EQ(rep.records, cut);
  const std::uint64_t ckpt_every = crash_cfg.checkpoint_every;
  if (rec.checkpointable() && ckpt_every > 0 && cut >= ckpt_every) {
    EXPECT_TRUE(rep.used_checkpoint) << algo_name << " cut=" << cut;
    EXPECT_EQ(rep.checkpoint_seq, (cut / ckpt_every) * ckpt_every);
    EXPECT_EQ(rep.replayed, cut - rep.checkpoint_seq);
  } else {
    EXPECT_EQ(rep.replayed, cut);
  }

  for (std::size_t i = cut; i < instance.size(); ++i) {
    const Item& it = instance[i];
    ASSERT_EQ(rec.offer(it.arrival, it.departure, it.size, i + 1),
              ref_bins[i])
        << algo_name << ": diverged after recovery at item " << i
        << " (cut " << cut << ")";
  }
  const Cost rec_cost = rec.finish();
  EXPECT_EQ(rec_cost, ref_cost) << algo_name << ": cost not bit-identical";
  rec.close();
}

constexpr std::uint64_t kSeeds = 8;
constexpr std::uint64_t kCkptEvery = 7;

TEST_F(RecoveryTest, BitIdenticalOnGeneralInputs) {
  for (const char* algo : {"ff", "bf", "wf", "cbd", "ha"}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Instance instance = general_instance(seed);
      ASSERT_GE(instance.size(), 16u);
      std::mt19937_64 cut_rng(seed * 1000 + 17);
      const std::size_t cut = std::uniform_int_distribution<std::size_t>(
          1, instance.size() - 1)(cut_rng);
      const std::string tag = std::string(algo) + "-g" + std::to_string(seed);
      check_crash_recovery(algo, instance, cut,
                           config(tag + "-ref", false, kCkptEvery),
                           config(tag, false, kCkptEvery),
                           config(tag, true, kCkptEvery));
    }
  }
}

TEST_F(RecoveryTest, BitIdenticalOnAlignedInputs) {
  for (const char* algo : {"ff", "bf", "wf", "cbd", "ha", "cdff"}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Instance instance = aligned_instance(seed);
      ASSERT_GE(instance.size(), 16u);
      std::mt19937_64 cut_rng(seed * 1000 + 29);
      const std::size_t cut = std::uniform_int_distribution<std::size_t>(
          1, instance.size() - 1)(cut_rng);
      const std::string tag = std::string(algo) + "-a" + std::to_string(seed);
      check_crash_recovery(algo, instance, cut,
                           config(tag + "-ref", false, kCkptEvery),
                           config(tag, false, kCkptEvery),
                           config(tag, true, kCkptEvery));
    }
  }
}

TEST_F(RecoveryTest, NonCheckpointableFallsBackToFullReplay) {
  const Instance instance = general_instance(4);
  const std::size_t cut = instance.size() / 2;
  // dfit is deterministic but not Checkpointable: checkpoint_now() must be
  // a no-op and recovery must replay the whole log.
  check_crash_recovery("dfit", instance, cut,
                       config("dfit-ref", false, 0),
                       config("dfit", false, kCkptEvery),
                       config("dfit", true, kCkptEvery));
  DurableSession s(cli::make_algorithm("dfit"), "dfit",
                   config("dfit2", false, 0));
  EXPECT_FALSE(s.checkpointable());
  EXPECT_FALSE(s.checkpoint_now());
}

TEST_F(RecoveryTest, CheckpointAheadOfTruncatedWalIsIgnored) {
  const Instance instance = general_instance(5);
  const auto cfg = config("ahead", false, 2);
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 6; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    s.close();  // checkpoint now covers seq 6
  }
  // Lose the last 2 WAL records (but keep the checkpoint): the checkpoint
  // now claims offers the log cannot verify, so it must be ignored. The
  // log is a fresh one-segment chain; cut the segment file itself.
  const std::string seg = wal_segment_path(cfg.wal_path, 1);
  const WalReadResult wal = read_wal(seg);
  ASSERT_EQ(wal.records.size(), 6u);
  const std::uint64_t header = wal.valid_bytes - 57 * 6;
  truncate_wal(seg, header + 4 * 57);

  DurableSession rec(cli::make_algorithm("ff"), "ff",
                     config("ahead", true, 2));
  EXPECT_FALSE(rec.recovery().used_checkpoint);
  EXPECT_EQ(rec.recovery().replayed, 4u);
  EXPECT_EQ(rec.seq(), 4u);
}

TEST_F(RecoveryTest, TornTailIsTruncatedAndReported) {
  const Instance instance = general_instance(6);
  const auto cfg = config("torn", false, 0);
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 5; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    s.close();
  }
  {
    std::ofstream f(wal_segment_path(cfg.wal_path, 1),
                    std::ios::binary | std::ios::app);
    f.write("\x39\x00\x00\x00garbage-torn-frame", 22);  // half a frame
  }
  DurableSession rec(cli::make_algorithm("ff"), "ff",
                     config("torn", true, 0));
  EXPECT_TRUE(rec.recovery().torn);
  EXPECT_GT(rec.recovery().truncated_bytes, 0u);
  EXPECT_EQ(rec.seq(), 5u);
  // The repaired log is clean again.
  EXPECT_FALSE(scan_segmented_wal(cfg.wal_path).torn);
}

TEST_F(RecoveryTest, ReplayWithWrongAlgorithmDiverges) {
  // ff and wf provably differ here: with bins at loads {0.6, 0.5}, a 0.3
  // item goes to bin 0 under First-Fit but to bin 1 under Worst-Fit.
  const auto cfg = config("wrong", false, 0);
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    s.offer(0.0, 10.0, 0.6, 1);
    s.offer(0.0, 10.0, 0.5, 2);   // does not fit bin 0 -> opens bin 1
    s.offer(1.0, 10.0, 0.3, 3);   // ff: bin 0
    s.close();
  }
  {
    DurableSessionConfig bad = config("wrong", true, 0);
    EXPECT_THROW(DurableSession(cli::make_algorithm("wf"), "wf", bad),
                 std::runtime_error);
  }
}

TEST_F(RecoveryTest, FreshStartRemovesStaleCheckpoint) {
  const Instance instance = general_instance(7);
  const auto cfg = config("stale", false, 2);
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 4; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    s.close();
  }
  ASSERT_TRUE(fs::exists(cfg.checkpoint_path));
  {
    // Fresh (non-resume) session on the same paths: the stale checkpoint
    // must go away with the truncated WAL, or a later resume would pair
    // the new log with the old snapshot.
    DurableSession s(cli::make_algorithm("ff"), "ff",
                     config("stale", false, 0));
    EXPECT_FALSE(fs::exists(cfg.checkpoint_path));
    s.offer(0.0, 1.0, 0.5, 1);
    s.close();
  }
  DurableSession rec(cli::make_algorithm("ff"), "ff",
                     config("stale", true, 0));
  EXPECT_EQ(rec.seq(), 1u);
  EXPECT_FALSE(rec.recovery().used_checkpoint);
}

TEST_F(RecoveryTest, SegmentedLogRecoversBitIdenticallyAcrossCuts) {
  const Instance instance = general_instance(9);
  ASSERT_GE(instance.size(), 40u);

  std::vector<BinId> ref_bins;
  Cost ref_cost = 0.0;
  {
    DurableSession ref(cli::make_algorithm("bf"), "bf",
                       config("segref", false, 0));
    for (std::size_t i = 0; i < instance.size(); ++i) {
      const Item& it = instance[i];
      ref_bins.push_back(ref.offer(it.arrival, it.departure, it.size, i + 1));
    }
    ref_cost = ref.finish();
    ref.close();
  }

  for (const std::size_t cut :
       {std::size_t{1}, instance.size() / 3, instance.size() / 2,
        instance.size() - 1}) {
    const std::string tag = "seg" + std::to_string(cut);
    auto crash_cfg = config(tag, false, kCkptEvery);
    // ~4 records per segment: the sweep crosses many rotation (and, with
    // checkpoints every 7, compaction) boundaries.
    crash_cfg.wal_segment_bytes = 256;
    {
      DurableSession crash(cli::make_algorithm("bf"), "bf", crash_cfg);
      for (std::size_t i = 0; i < cut; ++i) {
        const Item& it = instance[i];
        ASSERT_EQ(crash.offer(it.arrival, it.departure, it.size, i + 1),
                  ref_bins[i]);
      }
      if (cut > 8) {
        EXPECT_GT(crash.wal()->rotations(), 0u);
      }
    }
    auto resume_cfg = config(tag, true, kCkptEvery);
    resume_cfg.wal_segment_bytes = 256;
    DurableSession rec(cli::make_algorithm("bf"), "bf", resume_cfg);
    EXPECT_EQ(rec.seq(), cut);
    if (cut > 8) {
      EXPECT_GT(rec.recovery().segments_scanned, 1u);
    }
    for (std::size_t i = cut; i < instance.size(); ++i) {
      const Item& it = instance[i];
      ASSERT_EQ(rec.offer(it.arrival, it.departure, it.size, i + 1),
                ref_bins[i])
          << "diverged after segmented recovery at item " << i << " (cut "
          << cut << ")";
    }
    EXPECT_EQ(rec.finish(), ref_cost) << "cut " << cut;
    rec.close();
  }
}

TEST_F(RecoveryTest, CompactedWalWithoutCheckpointRefusesRecovery) {
  const Instance instance = general_instance(10);
  auto cfg = config("compact", false, 5);
  cfg.wal_segment_bytes = 256;
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 30; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    ASSERT_GT(s.compacted_segments(), 0u)
        << "test premise: compaction must have removed covered segments";
    s.close();
  }
  const SegmentedWalScan scan = scan_segmented_wal(cfg.wal_path);
  ASSERT_GT(scan.first_seq, 0u);
  // The compacted-away records exist ONLY inside the checkpoint now.
  // Deleting it must make recovery refuse — replaying the surviving tail
  // alone would silently rebuild a wrong session.
  fs::remove(cfg.checkpoint_path);
  auto resume_cfg = config("compact", true, 5);
  resume_cfg.wal_segment_bytes = 256;
  EXPECT_THROW(DurableSession(cli::make_algorithm("ff"), "ff", resume_cfg),
               std::runtime_error);
}

TEST_F(RecoveryTest, MidCompactionOrphanSegmentIsRemovedOnRecovery) {
  const Instance instance = general_instance(11);
  auto cfg = config("orphan", false, 0);
  cfg.wal_segment_bytes = 256;
  Cost ref_cost = 0.0;
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    // One checkpoint at seq 10, then keep offering with no further
    // checkpoints: sealed-but-uncovered segments pile up, so the manifest
    // still lists several segments at close.
    for (std::size_t i = 0; i < 30; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
      if (i + 1 == 10) {
        ASSERT_TRUE(s.checkpoint_now());
      }
    }
    ref_cost = s.finish();
    s.close();
  }
  // Replay the crash window inside compact(): the manifest rewrite
  // completed but the unlink never ran, leaving an on-disk segment the
  // manifest no longer lists.
  WalManifest m = *read_wal_manifest(cfg.wal_path);
  ASSERT_GE(m.segments.size(), 2u);
  const fs::path orphan = fs::path(cfg.wal_path).parent_path() /
                          m.segments.front().file;
  m.segments.erase(m.segments.begin());
  write_wal_manifest(cfg.wal_path, m);
  ASSERT_TRUE(fs::exists(orphan));

  auto resume_cfg = config("orphan", true, 5);
  resume_cfg.wal_segment_bytes = 256;
  DurableSession rec(cli::make_algorithm("ff"), "ff", resume_cfg);
  EXPECT_FALSE(fs::exists(orphan)) << "orphan segment must be swept";
  EXPECT_TRUE(rec.recovery().used_checkpoint);
  EXPECT_EQ(rec.seq(), 30u);
  EXPECT_EQ(rec.finish(), ref_cost);
}

// Per-tenant resume marks survive recovery — including checkpoint-anchored
// compaction, which deletes the very WAL records the marks were derived
// from. Two tenants with overlapping id spaces feed one session; after a
// crash each tenant's high-water mark must come back separately, not as a
// shared maximum.
TEST_F(RecoveryTest, TenantStreamMarksSurviveRecoveryAndCompaction) {
  auto cfg = config("marks", false, 5);
  cfg.wal_segment_bytes = 256;
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    // "a" reaches index 24, "b" only 8 — interleaved 3:1, arrival strictly
    // increasing so every offer is valid.
    std::uint64_t a = 0, b = 0;
    for (int i = 0; i < 32; ++i) {
      const bool is_a = (i % 4) != 3;
      const std::uint64_t idx = is_a ? ++a : ++b;
      s.offer(0.25 * i, 0.25 * i + 8.0, 0.05, idx, is_a ? "a" : "b");
    }
    ASSERT_EQ(a, 24u);
    ASSERT_EQ(b, 8u);
    ASSERT_GT(s.compacted_segments(), 0u)
        << "test premise: compaction must have removed covered segments";
    // Crash: no close(), the fds just go away.
  }
  auto resume_cfg = config("marks", true, 5);
  resume_cfg.wal_segment_bytes = 256;
  DurableSession rec(cli::make_algorithm("ff"), "ff", resume_cfg);
  EXPECT_TRUE(rec.recovery().used_checkpoint);
  // Some of the replayed history is gone from the log: the early marks can
  // only have come through the checkpoint's tenant table.
  EXPECT_LT(rec.recovery().records, 32u);
  EXPECT_EQ(rec.seq(), 32u);
  EXPECT_EQ(rec.last_stream_index("a"), 24u);
  EXPECT_EQ(rec.last_stream_index("b"), 8u);
  EXPECT_EQ(rec.last_stream_index("never-seen"), 0u);
  EXPECT_EQ(rec.last_stream_index(), 24u);  // global summary = max mark
  rec.close();
}

TEST_F(RecoveryTest, WalWriteFailurePoisonsSession) {
  const Instance instance = general_instance(12);
  auto cfg = config("poison", false, 0);
  // Injected ENOSPC on the 4th append, after a 10-byte short write — the
  // torn frame a full disk leaves at the tail. Segment write ops 0 and 1
  // are the v2 magic + header, so frame appends start at match 2 and the
  // 4th frame is match 5: a 10-byte short write there, hard ENOSPC on
  // every later write (the disk stays full).
  io::FaultInjectingEnv fault_env(io::Env::posix());
  io::FaultRule rule;
  rule.ops = io::kOpWrite;
  rule.path_contains = ".seg";
  rule.after = 5;
  rule.kind = io::FaultKind::kEnospc;
  rule.param = 10;
  fault_env.add_rule(rule);
  cfg.env = &fault_env;
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 3; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    EXPECT_FALSE(s.failed());
    const Item& it = instance[3];
    // In-memory state has applied the offer the log will never hold: the
    // session must refuse everything from here on, not limp along.
    EXPECT_THROW(s.offer(it.arrival, it.departure, it.size, 4),
                 std::runtime_error);
    EXPECT_TRUE(s.failed());
    EXPECT_THROW(s.offer(it.arrival, it.departure, it.size, 5),
                 std::runtime_error);
    EXPECT_THROW(s.commit(), std::runtime_error);
  }
  // Recovery sees only the 3 durable records plus a torn tail: the
  // un-acknowledged 4th offer is gone, exactly per the log-before-ack
  // contract.
  DurableSession rec(cli::make_algorithm("ff"), "ff",
                     config("poison", true, 0));
  EXPECT_TRUE(rec.recovery().torn);
  EXPECT_EQ(rec.seq(), 3u);
}

TEST_F(RecoveryTest, UnreadableCheckpointIsAnErrorNotAbsent) {
  const Instance instance = general_instance(13);
  const auto cfg = config("eloop", false, 2);
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 4; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    s.close();
  }
  // Replace the checkpoint with a self-referencing symlink: open(2) fails
  // with ELOOP — NOT ENOENT. Pre-fix, any unopenable file was treated as
  // "absent" and recovery silently fell back to full replay, masking the
  // operational error (and, on a compacted log, producing a wrong state).
  fs::remove(cfg.checkpoint_path);
  ASSERT_EQ(::symlink(cfg.checkpoint_path.c_str(),
                      cfg.checkpoint_path.c_str()),
            0);
  EXPECT_THROW(DurableSession(cli::make_algorithm("ff"), "ff",
                              config("eloop", true, 2)),
               std::runtime_error);
}

TEST_F(RecoveryTest, PermissionDeniedCheckpointIsAnError) {
  if (::geteuid() == 0)
    GTEST_SKIP() << "root bypasses file permission checks (EACCES "
                    "unreachable); the ELOOP variant covers the errno fix";
  const Instance instance = general_instance(14);
  const auto cfg = config("denied", false, 2);
  {
    DurableSession s(cli::make_algorithm("ff"), "ff", cfg);
    for (std::size_t i = 0; i < 4; ++i) {
      const Item& it = instance[i];
      s.offer(it.arrival, it.departure, it.size, i + 1);
    }
    s.close();
  }
  ASSERT_EQ(::chmod(cfg.checkpoint_path.c_str(), 0), 0);
  EXPECT_THROW(DurableSession(cli::make_algorithm("ff"), "ff",
                              config("denied", true, 2)),
               std::runtime_error);
  ::chmod(cfg.checkpoint_path.c_str(), 0644);  // let TearDown clean up
}

}  // namespace
}  // namespace cdbp::serve
