// ShardRouter admission under concurrent producers — the TSan targets for
// the serve plane's front door:
//   - kBlock: blocked producers are woken losslessly and each producer's
//     own submission order survives into the apply/ack order;
//   - kReject / kShed: the refusal and shed counters are exact (every
//     submitted request is accounted, none double-counted) when many
//     threads race on one full queue;
//   - kShardDegraded: degradation propagates to racing producers without
//     losing an ack — accepted requests terminate as exactly one of
//     applied/dropped, and healthy shards never notice.
#include "serve/shard_router.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "core/io_env.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

class RouterAdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_admission_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] RouterConfig config(std::size_t shards) const {
    RouterConfig rc;
    rc.wal_dir = dir_.string();
    rc.shards = shards;
    rc.fsync = FsyncPolicy::kNone;
    return rc;
  }

  static std::function<AlgorithmPtr()> ff_factory() {
    return [] { return cli::make_algorithm("ff"); };
  }

  static ServeRequest request(const std::string& tenant, std::uint64_t idx) {
    ServeRequest req;
    req.tenant = tenant;
    req.stream_index = idx;
    req.arrival = 0.0;  // one instant: per-shard time order can never trip
    req.departure = 1.0;
    req.size = 0.01;
    return req;
  }

  fs::path dir_;
};

// kBlock with a queue far smaller than the offered load: every producer
// must eventually be woken and admitted (no lost wakeup wedging a thread),
// and each producer's submissions must be APPLIED in its submission order —
// pop order is queue order, so a reordering here would mean push() raced.
TEST_F(RouterAdmissionTest, BlockWakesEveryProducerInSubmissionOrder) {
  RouterConfig rc = config(1);
  rc.queue_capacity = 8;     // deep contention: ~all producers park
  rc.worker_delay_us = 100;  // slow consumer so the queue is usually full
  ShardRouter router(rc, ff_factory(), "ff");

  constexpr std::size_t kProducers = 6;
  constexpr std::uint64_t kPerProducer = 250;
  std::mutex mu;
  std::map<std::string, std::vector<std::uint64_t>> acked_order;
  router.set_on_ack([&](const ServeResult& r, AckKind kind) {
    EXPECT_EQ(kind, AckKind::kApplied);
    std::lock_guard<std::mutex> lock(mu);
    acked_order[r.tenant].push_back(r.stream_index);
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&router, p] {
      const std::string tenant = "producer-" + std::to_string(p);
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        // stream_index encodes (producer, seq): unique, locally increasing.
        ASSERT_EQ(router.try_submit(request(tenant, p * 100000 + i)),
                  SubmitStatus::kAccepted)
            << "kBlock must never refuse a healthy shard";
      }
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();

  EXPECT_EQ(router.stats(0).applied, kProducers * kPerProducer);
  EXPECT_EQ(router.stats(0).shed, 0u);
  ASSERT_EQ(acked_order.size(), kProducers);
  for (const auto& [tenant, order] : acked_order) {
    ASSERT_EQ(order.size(), kPerProducer) << tenant;
    for (std::size_t i = 1; i < order.size(); ++i)
      ASSERT_LT(order[i - 1], order[i])
          << tenant << " acked out of submission order at position " << i;
  }
}

// kReject under racing producers: accepted + rejected must equal the
// attempts exactly, and the router's applied count must equal the accepted
// count — a lost refusal (accepted but never applied) or a double-count
// (applied without acceptance) both fail the arithmetic.
TEST_F(RouterAdmissionTest, RejectCountersAreExactUnderContention) {
  RouterConfig rc = config(1);
  rc.queue_capacity = 4;
  rc.admission = AdmissionPolicy::kReject;
  rc.worker_delay_us = 500;
  ShardRouter router(rc, ff_factory(), "ff");

  constexpr std::size_t kProducers = 6;
  constexpr std::uint64_t kPerProducer = 200;
  std::atomic<std::uint64_t> accepted{0}, rejected{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const SubmitStatus st = router.try_submit(request("t", 0));
        if (st == SubmitStatus::kAccepted)
          accepted.fetch_add(1, std::memory_order_relaxed);
        else {
          ASSERT_EQ(st, SubmitStatus::kQueueFull);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_GT(rejected.load(), 0u) << "a 4-deep queue cannot absorb this load";
  EXPECT_EQ(router.stats(0).applied, accepted.load());
  EXPECT_EQ(router.stats(0).shed, 0u);
}

// kShed never refuses: the exact law is submits == applied + shed, and the
// ack stream sees every applied request. Shed victims are counted in `shed`
// (kDropped acks are reserved for degradation).
TEST_F(RouterAdmissionTest, ShedCountersAreExactUnderContention) {
  RouterConfig rc = config(1);
  rc.queue_capacity = 4;
  rc.admission = AdmissionPolicy::kShed;
  rc.worker_delay_us = 500;
  ShardRouter router(rc, ff_factory(), "ff");

  std::atomic<std::uint64_t> applied_acks{0};
  router.set_on_ack([&](const ServeResult&, AckKind kind) {
    if (kind == AckKind::kApplied)
      applied_acks.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr std::size_t kProducers = 6;
  constexpr std::uint64_t kPerProducer = 200;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ASSERT_EQ(router.try_submit(request("t", 0)),
                  SubmitStatus::kAccepted)
            << "shed admission never refuses";
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();

  const ShardStats& s = router.stats(0);
  EXPECT_GT(s.shed, 0u);
  EXPECT_EQ(s.applied + s.shed, kProducers * kPerProducer);
  EXPECT_EQ(applied_acks.load(), s.applied);
  EXPECT_LE(s.queue_peak, 4u);
}

// The degradation race: producers hammer both shards while shard 0's
// durability path is poisoned mid-run. Checked invariants, all racing:
//   - refusals seen by producers are kShardDegraded only (never a silent
//     drop), and only for the sick shard's tenant;
//   - every ACCEPTED sick-shard request terminates exactly once — applied
//     before the flip or dropped by it: accepted == applied + dropped;
//   - the healthy shard applies its full load, untouched.
// Run under TSan this exercises the degraded-flag release/acquire pair and
// the ack-callback paths from both the worker and the drain loop.
TEST_F(RouterAdmissionTest, DegradedShardPropagatesCleanlyUnderRace) {
  io::FaultInjectingEnv env(io::Env::posix());
  RouterConfig rc = config(2);
  rc.queue_capacity = 32;
  rc.fsync = FsyncPolicy::kEvery;  // commit touches fsync: the fault point
  rc.env = &env;
  ShardRouter router(rc, ff_factory(), "ff");

  std::string sick_tenant, healthy_tenant;
  for (int i = 0; sick_tenant.empty() || healthy_tenant.empty(); ++i) {
    const std::string t = "tenant-" + std::to_string(i);
    (router.shard_of(t) == 0 ? sick_tenant : healthy_tenant) = t;
    ASSERT_LT(i, 1000);
  }

  std::atomic<std::uint64_t> sick_applied{0}, sick_dropped{0};
  router.set_on_ack([&](const ServeResult& r, AckKind kind) {
    if (r.shard != 0) return;
    if (kind == AckKind::kApplied)
      sick_applied.fetch_add(1, std::memory_order_relaxed);
    else if (kind == AckKind::kDropped)
      sick_dropped.fetch_add(1, std::memory_order_relaxed);
  });

  // Poison shard 0's fsync AFTER construction (setup I/O stays clean): the
  // first committed batch flips it while producers are mid-flight.
  io::FaultRule rule;
  rule.ops = io::kOpFsync;
  rule.path_contains = "shard-0";
  rule.kind = io::FaultKind::kStickyFsync;
  rule.repeat = true;
  env.add_rule(rule);

  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 300;
  std::atomic<std::uint64_t> sick_accepted{0}, sick_refused{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        const std::uint64_t idx = (p + 1) * 100000 + i;
        const SubmitStatus sick_st =
            router.try_submit(request(sick_tenant, idx));
        if (sick_st == SubmitStatus::kAccepted)
          sick_accepted.fetch_add(1, std::memory_order_relaxed);
        else {
          ASSERT_EQ(sick_st, SubmitStatus::kShardDegraded)
              << "kBlock admission refuses only by degradation";
          sick_refused.fetch_add(1, std::memory_order_relaxed);
        }
        ASSERT_EQ(router.try_submit(request(healthy_tenant, idx)),
                  SubmitStatus::kAccepted)
            << "a sibling's degradation must not leak";
      }
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();

  EXPECT_EQ(router.degraded_shards(), 1u);
  const ShardStats& sick = router.stats(0);
  const ShardStats& healthy = router.stats(1);
  EXPECT_TRUE(sick.degraded);
  EXPECT_FALSE(sick.degrade_reason.empty());
  EXPECT_FALSE(healthy.degraded);
  EXPECT_EQ(healthy.applied, kProducers * kPerProducer);
  // With fsync=every the first commit already fails, so nothing on the
  // sick shard is ever acked applied; every accepted request was dropped.
  EXPECT_EQ(sick_applied.load(), sick.applied);
  EXPECT_EQ(sick_dropped.load(), sick.degraded_dropped);
  EXPECT_EQ(sick_accepted.load(), sick.applied + sick.degraded_dropped)
      << "an accepted request must terminate exactly once";
  EXPECT_GT(sick_refused.load(), 0u)
      << "degradation never became visible to producers";
  for (const ServeResult& r : router.results())
    EXPECT_EQ(r.shard, 1u) << "only healthy-shard placements may survive";
}

}  // namespace
}  // namespace cdbp::serve
