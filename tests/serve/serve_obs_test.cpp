// Serve-plane observability: tenant-label cardinality + sanitization in
// ServeMetrics, end-to-end latency capture through a real ShardRouter run,
// and the StatsExporter's dump files. Everything here must also compile
// (and the OBS-independent parts pass) under CDBP_OBS_OFF.
#include "serve/serve_metrics.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "obs/snapshot.h"
#include "serve/request_stream.h"
#include "serve/shard_router.h"
#include "serve/stats_exporter.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

class ServeObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_serve_obs_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  fs::path dir_;
};

#ifndef CDBP_OBS_OFF

TEST_F(ServeObsTest, TenantHistogramTableIsBounded) {
  obs::MetricsRegistry registry;
  ServeMetrics metrics(registry, 1, /*max_tenants=*/4);
  for (int t = 0; t < 10; ++t)
    metrics.tenant_ack("tenant" + std::to_string(t)).record(100);

  EXPECT_EQ(metrics.tenant_metrics(), 4u);
  // Every tenant past the cap shares the one overflow histogram.
  EXPECT_EQ(&metrics.tenant_ack("tenant7"), &metrics.tenant_ack("tenant9"));
  EXPECT_EQ(&metrics.tenant_ack("brand-new"), &metrics.tenant_ack("tenant9"));
  // Tenants admitted before the cap keep their own (stable) histogram.
  EXPECT_EQ(&metrics.tenant_ack("tenant0"), &metrics.tenant_ack("tenant0"));
  EXPECT_NE(&metrics.tenant_ack("tenant0"), &metrics.tenant_ack("tenant9"));

  const obs::HistogramSnapshot* other =
      obs::find_histogram(registry.snapshot(), "serve.tenant_ack_us.other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->count, 6u);  // tenants 4..9 overflowed
}

TEST_F(ServeObsTest, HostileTenantIdsCannotReachMetricNames) {
  obs::MetricsRegistry registry;
  ServeMetrics metrics(registry, 1);
  metrics.tenant_ack("evil,id\nwith{noise}").record(7);
  // Distinct raw ids whose sanitized labels collide share one histogram —
  // the cardinality bound is on labels, not raw inputs.
  EXPECT_EQ(&metrics.tenant_ack("a,b"), &metrics.tenant_ack("a\tb"));

  const obs::MetricsSnapshot snap = registry.snapshot();
  bool found = false;
  for (const auto& [name, hist] : snap.histograms) {
    EXPECT_EQ(name.find(','), std::string::npos) << name;
    EXPECT_EQ(name.find('\n'), std::string::npos) << name;
    EXPECT_EQ(name.find('{'), std::string::npos) << name;
    if (name == "serve.tenant_ack_us.evil_id_with_noise_") found = true;
  }
  EXPECT_TRUE(found);
}

#endif  // !CDBP_OBS_OFF

TEST_F(ServeObsTest, RouterRunCapturesAckLatencyPerShard) {
  const std::vector<ServeRequest> stream =
      generate_stream(StreamGenConfig{300, 8, 11, 5, 64.0});
  RouterConfig rc;
  rc.wal_dir = (dir_ / "wal").string();
  rc.shards = 2;
  rc.fsync = FsyncPolicy::kNone;
  ShardRouter router(
      rc, [] { return AlgorithmPtr(std::make_unique<algos::BestFit>()); },
      "bf");
  for (const ServeRequest& req : stream) ASSERT_TRUE(router.submit(req));
  router.stop();

  std::uint64_t applied = 0;
  std::uint64_t latency_count = 0;
  for (std::size_t i = 0; i < router.shards(); ++i) {
    applied += router.stats(i).applied;
    latency_count += router.stats(i).ack_latency.count;
    // The queue-depth gauge is maintained inside the queue: once the router
    // has drained and stopped, it must read zero again.
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .gauge("serve.queue_depth.shard" + std::to_string(i))
                  .value(),
              0.0);
  }
  EXPECT_EQ(applied, stream.size());
#ifndef CDBP_OBS_OFF
  // Every applied offer was stamped at admission and acked post-commit.
  EXPECT_EQ(latency_count, applied);
  // Submission -> post-commit ack can't be instantaneous for every offer.
  EXPECT_GT(obs::merge(router.stats(0).ack_latency,
                       router.stats(1).ack_latency)
                .max,
            0u);
#else
  EXPECT_EQ(latency_count, 0u);  // interval snapshots are empty when off
#endif
}

TEST_F(ServeObsTest, StatsExporterWritesBothFormats) {
  obs::MetricsRegistry::global().counter("serve.test_marker").add(5);
  const std::string base = (dir_ / "stats").string();
  StatsExporter exporter(StatsExporterConfig{base, /*interval_ms=*/0});
  exporter.dump_now();
  const std::uint64_t after_manual = exporter.dumps();
  EXPECT_GE(after_manual, 1u);
  exporter.stop();                          // final dump, then join
  EXPECT_GT(exporter.dumps(), after_manual);
  exporter.stop();                          // idempotent

  const std::string prom = slurp(base + ".prom");
  const std::string json = slurp(base + ".json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_NE(json.find("\"interval_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
#ifndef CDBP_OBS_OFF
  EXPECT_NE(prom.find("# TYPE cdbp_serve_test_marker counter"),
            std::string::npos);
  EXPECT_NE(json.find("\"serve.test_marker\":"), std::string::npos);
#else
  // Compiled out: the exporter still runs and renders, over empty data.
  EXPECT_EQ(prom.find("cdbp_serve_test_marker"), std::string::npos);
#endif
  // No tmp file left behind by the atomic rename.
  EXPECT_FALSE(fs::exists(base + ".prom.tmp"));
  EXPECT_FALSE(fs::exists(base + ".json.tmp"));
}

TEST_F(ServeObsTest, StatsExporterServicesSignalFlag) {
  const std::string base = (dir_ / "sig").string();
  {
    StatsExporter exporter(StatsExporterConfig{base, /*interval_ms=*/0});
    StatsExporter::dump_requested = 1;  // what the SIGUSR1 handler does
    // Poll tick is 50ms; wait for the loop to consume the flag.
    for (int i = 0; i < 100 && exporter.dumps() == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(exporter.dumps(), 1u);
    EXPECT_EQ(StatsExporter::dump_requested, 0);
  }
  EXPECT_TRUE(fs::exists(base + ".prom"));
  EXPECT_TRUE(fs::exists(base + ".json"));
}

TEST_F(ServeObsTest, StatsExporterRejectsEmptyBasePath) {
  EXPECT_THROW(StatsExporter(StatsExporterConfig{"", 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdbp::serve
