#include "serve/shard_router.h"

#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "cli/cli.h"
#include "core/session.h"
#include "serve/request_stream.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_router_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] RouterConfig config(std::size_t shards) const {
    RouterConfig rc;
    rc.wal_dir = dir_.string();
    rc.shards = shards;
    rc.fsync = FsyncPolicy::kNone;
    return rc;
  }

  static std::function<AlgorithmPtr()> ff_factory() {
    return [] { return cli::make_algorithm("ff"); };
  }

  fs::path dir_;
};

TEST_F(ShardRouterTest, TenantHashIsStableAcrossRuns) {
  // FNV-1a 64 with the standard offset basis and prime: pinned values, so
  // shard assignment survives library upgrades and restarts.
  EXPECT_EQ(tenant_hash(""), 14695981039346656037ULL);
  EXPECT_EQ(tenant_hash("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(tenant_hash("tenant-7"), tenant_hash("tenant-7"));
  EXPECT_NE(tenant_hash("tenant-7"), tenant_hash("tenant-8"));
}

TEST_F(ShardRouterTest, SingleShardMatchesInteractiveSession) {
  const std::vector<ServeRequest> stream =
      generate_stream(StreamGenConfig{120, 4, 21, 5, 64.0});
  ShardRouter router(config(1), ff_factory(), "ff");
  for (const ServeRequest& req : stream) EXPECT_TRUE(router.submit(req));
  router.stop();

  algos::FirstFit ff;
  InteractiveSession session(ff);
  const std::vector<ServeResult> results = router.results();
  ASSERT_EQ(results.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ServeRequest& req = stream[i];
    EXPECT_EQ(results[i].bin,
              session.offer(req.arrival, req.departure, req.size))
        << "request " << i;
    EXPECT_EQ(results[i].stream_index, req.stream_index);
  }
  EXPECT_EQ(router.total_cost(), session.finish());
  EXPECT_EQ(router.stats(0).applied, stream.size());
}

TEST_F(ShardRouterTest, RoutesEachTenantToOneShard) {
  const std::vector<ServeRequest> stream =
      generate_stream(StreamGenConfig{200, 16, 3, 5, 64.0});
  ShardRouter router(config(4), ff_factory(), "ff");
  for (const ServeRequest& req : stream) EXPECT_TRUE(router.submit(req));
  router.stop();

  std::uint64_t applied = 0;
  for (std::size_t i = 0; i < 4; ++i) applied += router.stats(i).applied;
  EXPECT_EQ(applied, stream.size());
  for (const ServeResult& r : router.results())
    EXPECT_EQ(r.shard, router.shard_of(r.tenant));
}

// The TSan stress target: multiple producers, multiple shards, all
// requests at one arrival time so per-shard ordering can never reject.
TEST_F(ShardRouterTest, MultiProducerMultiShardStress) {
  RouterConfig rc = config(4);
  rc.queue_capacity = 32;  // small queue: exercise blocking backpressure
  ShardRouter router(rc, ff_factory(), "ff");

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&router, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ServeRequest req;
        req.tenant = "p" + std::to_string(p) + "-t" + std::to_string(i % 13);
        req.stream_index = 0;  // unordered feed: no resume bookkeeping
        req.arrival = 0.0;
        req.departure = 1.0 + static_cast<double>(i % 7);
        req.size = 0.05;
        ASSERT_TRUE(router.submit(req));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();

  std::uint64_t applied = 0, invalid = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    applied += router.stats(i).applied;
    invalid += router.stats(i).invalid;
  }
  EXPECT_EQ(applied, kProducers * kPerProducer);
  EXPECT_EQ(invalid, 0u);
  EXPECT_EQ(router.results().size(), kProducers * kPerProducer);
}

TEST_F(ShardRouterTest, RejectPolicyRefusesWhenQueueIsFull) {
  RouterConfig rc = config(1);
  rc.queue_capacity = 4;
  rc.admission = AdmissionPolicy::kReject;
  rc.worker_delay_us = 2000;  // slow consumer: the queue must fill
  ShardRouter router(rc, ff_factory(), "ff");

  std::uint64_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    ServeRequest req;
    req.tenant = "t";
    req.arrival = 0.0;
    req.departure = 1.0;
    req.size = 0.01;
    if (router.submit(req))
      ++accepted;
    else
      ++rejected;
  }
  router.stop();
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(router.stats(0).applied, accepted);
  EXPECT_EQ(router.stats(0).shed, 0u);
}

TEST_F(ShardRouterTest, ShedPolicyDropsOldestButAcceptsAll) {
  RouterConfig rc = config(1);
  rc.queue_capacity = 4;
  rc.admission = AdmissionPolicy::kShed;
  rc.worker_delay_us = 2000;
  ShardRouter router(rc, ff_factory(), "ff");

  for (std::size_t i = 0; i < 64; ++i) {
    ServeRequest req;
    req.tenant = "t";
    req.arrival = 0.0;
    req.departure = 1.0;
    req.size = 0.01;
    EXPECT_TRUE(router.submit(req)) << "shed policy never refuses";
  }
  router.stop();
  const ShardStats& s = router.stats(0);
  EXPECT_GT(s.shed, 0u);
  EXPECT_EQ(s.applied + s.shed, 64u);
  EXPECT_LE(s.queue_peak, 4u);
}

TEST_F(ShardRouterTest, InvalidRequestsAreCountedNotFatal) {
  ShardRouter router(config(1), ff_factory(), "ff");
  ServeRequest ok;
  ok.tenant = "t";
  ok.arrival = 5.0;
  ok.departure = 6.0;
  ok.size = 0.5;
  EXPECT_TRUE(router.submit(ok));
  ServeRequest stale = ok;
  stale.arrival = 1.0;  // behind the shard clock once `ok` is applied
  stale.departure = 2.0;
  EXPECT_TRUE(router.submit(stale));
  ServeRequest degenerate = ok;
  degenerate.arrival = 7.0;
  degenerate.departure = 7.0;  // departure <= arrival
  EXPECT_TRUE(router.submit(degenerate));
  router.stop();
  EXPECT_EQ(router.stats(0).applied, 1u);
  EXPECT_EQ(router.stats(0).invalid, 2u);
}

// Resume dedup must key on (tenant, stream_index), not a shard-global
// high-water mark: tenant "a" pushes its ids to 6 before the restart;
// tenant "b" (same shard — there is only one) first appears AFTER the
// restart with ids 1..3, all below a's mark. Every one of b's offers must
// be applied — a shard-global mark would falsely ack them kSkipped without
// ever placing them.
TEST_F(ShardRouterTest, ResumeDedupIsPerTenantNotPerShard) {
  const RouterConfig rc = config(1);
  const auto offer = [](ShardRouter& router, const std::string& tenant,
                        std::uint64_t idx, double arrival) {
    ServeRequest req;
    req.tenant = tenant;
    req.stream_index = idx;
    req.arrival = arrival;
    req.departure = arrival + 3.0;
    req.size = 0.1;
    ASSERT_TRUE(router.submit(req));
  };
  {
    ShardRouter router(rc, ff_factory(), "ff");
    for (std::uint64_t i = 1; i <= 6; ++i)
      offer(router, "a", i, static_cast<double>(i));
    router.stop();
    EXPECT_EQ(router.stats(0).applied, 6u);
  }

  RouterConfig resumed = rc;
  resumed.resume = true;
  ShardRouter router(resumed, ff_factory(), "ff");
  std::mutex mu;
  std::map<std::pair<std::string, std::uint64_t>, AckKind> acks;
  router.set_on_ack([&](const ServeResult& r, AckKind kind) {
    const std::lock_guard<std::mutex> lock(mu);
    acks[{r.tenant, r.stream_index}] = kind;
  });
  for (std::uint64_t i = 1; i <= 6; ++i)  // a's replayed prefix
    offer(router, "a", i, static_cast<double>(i));
  for (std::uint64_t i = 1; i <= 3; ++i)  // b's ids overlap a's, below 6
    offer(router, "b", i, 6.0 + static_cast<double>(i));
  offer(router, "a", 7, 10.0);  // a's genuinely new suffix
  router.stop();

  for (std::uint64_t i = 1; i <= 6; ++i)
    EXPECT_EQ((acks[{"a", i}]), AckKind::kSkipped) << "a id " << i;
  for (std::uint64_t i = 1; i <= 3; ++i)
    EXPECT_EQ((acks[{"b", i}]), AckKind::kApplied) << "b id " << i;
  EXPECT_EQ((acks[{"a", 7}]), AckKind::kApplied);
  EXPECT_EQ(router.stats(0).skipped, 6u);
  EXPECT_EQ(router.stats(0).applied, 4u);
}

TEST_F(ShardRouterTest, LifecycleGuards) {
  auto router = std::make_unique<ShardRouter>(config(2), ff_factory(), "ff");
  EXPECT_THROW((void)router->stats(0), std::logic_error);
  EXPECT_THROW((void)router->results(), std::logic_error);
  router->stop();
  router->stop();  // idempotent
  ServeRequest req;
  req.tenant = "t";
  req.arrival = 0.0;
  req.departure = 1.0;
  req.size = 0.1;
  EXPECT_THROW((void)router->submit(req), std::logic_error);

  RouterConfig bad = config(0);
  EXPECT_THROW(ShardRouter(bad, ff_factory(), "ff"), std::invalid_argument);
  bad = config(1);
  bad.queue_capacity = 0;
  EXPECT_THROW(ShardRouter(bad, ff_factory(), "ff"), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp::serve
