// Segment-chain semantics: rotation, manifest consistency, the global
// intact-prefix rule under tears in NON-final segments, checkpoint-anchored
// compaction, orphan sweeps, and legacy single-file adoption.
#include "serve/wal_segment.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFrameBytes = 57;  // 8 envelope + 49 offer payload

class WalSegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_wal_segment_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string base(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<WalRecord> sample_records(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<WalRecord> out;
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    WalRecord rec;
    rec.seq = i;
    rec.stream_index = i + 1;
    t += unit(rng);
    rec.arrival = t;
    rec.departure = t + 1.0 + unit(rng) * 7.0;
    rec.size = 0.01 + 0.5 * unit(rng);
    rec.bin = static_cast<BinId>(rng() % 5);
    out.push_back(rec);
  }
  return out;
}

/// Builds a chain with ~4 records per segment.
SegmentedWal::Options tiny_segments() {
  SegmentedWal::Options opts;
  opts.policy = FsyncPolicy::kNone;
  opts.segment_bytes = 20 + 4 * kFrameBytes;
  return opts;
}

void expect_same_records(const std::vector<WalRecord>& got,
                         const std::vector<WalRecord>& want,
                         const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << what << " record " << i;
}

TEST_F(WalSegmentTest, ManifestRoundTripsAndRejectsCorruption) {
  const std::string b = base("m.wal");
  EXPECT_FALSE(read_wal_manifest(b).has_value());

  WalManifest m;
  m.next_segment_id = 4;
  m.segments.push_back({"m.wal.000002.seg", 10});
  m.segments.push_back({"m.wal.000003.seg", 25});
  write_wal_manifest(b, m);

  const auto back = read_wal_manifest(b);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->next_segment_id, 4u);
  ASSERT_EQ(back->segments.size(), 2u);
  EXPECT_EQ(back->segments[0], m.segments[0]);
  EXPECT_EQ(back->segments[1], m.segments[1]);

  // Manifests are written via tmp + rename: a corrupt one is damage, not a
  // crash artifact, and must throw rather than be treated as absent.
  std::fstream f(b + ".manifest",
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(14);
  f.put('\xEE');
  f.close();
  EXPECT_THROW((void)read_wal_manifest(b), std::runtime_error);
}

TEST_F(WalSegmentTest, RotationChainsSegmentsAndScanReassembles) {
  const std::string b = base("rot.wal");
  const std::vector<WalRecord> records = sample_records(19, 5);
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    for (const WalRecord& rec : records) wal.append(rec);
    EXPECT_GT(wal.rotations(), 2u);
    // Chain invariant: each entry's base_seq is the running record count.
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i + 1 < wal.manifest().segments.size(); ++i) {
      EXPECT_EQ(wal.manifest().segments[i].base_seq, expected);
      expected += read_wal((dir_ / wal.manifest().segments[i].file).string())
                      .records.size();
    }
    wal.close();
  }
  const SegmentedWalScan scan = scan_segmented_wal(b);
  EXPECT_TRUE(scan.exists);
  EXPECT_FALSE(scan.legacy);
  EXPECT_FALSE(scan.torn) << scan.tail_error;
  EXPECT_GT(scan.segments_scanned, 3u);
  expect_same_records(scan.records, records, "scan");
}

TEST_F(WalSegmentTest, ResumeAppendsAcrossProcessBoundary) {
  const std::string b = base("res.wal");
  const std::vector<WalRecord> records = sample_records(13, 6);
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    for (std::size_t i = 0; i < 7; ++i) wal.append(records[i]);
    wal.close();
  }
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/false);
    EXPECT_EQ(wal.manifest().segments.back().base_seq,
              scan_segmented_wal(b).manifest.segments.back().base_seq);
    for (std::size_t i = 7; i < 13; ++i) wal.append(records[i]);
    wal.close();
  }
  expect_same_records(scan_segmented_wal(b).records, records, "resumed");
}

// The tentpole torn-tail property, lifted to chains: kill the log at EVERY
// byte offset inside the last frame of a NON-final segment. The scan must
// keep exactly the intact prefix (all earlier segments + this segment's
// surviving records), mark everything later unreachable, and repair must
// truncate ONLY the torn segment, drop the later ones, and leave a chain a
// writer can continue bit-identically.
TEST_F(WalSegmentTest, TornTailInNonFinalSegmentAtEveryByteOffset) {
  const std::string b = base("torn.wal");
  const std::vector<WalRecord> records = sample_records(19, 42);
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    for (const WalRecord& rec : records) wal.append(rec);
    wal.close();
  }
  const SegmentedWalScan whole = scan_segmented_wal(b);
  ASSERT_FALSE(whole.torn);
  ASSERT_GE(whole.manifest.segments.size(), 4u);

  // Victim: segment 1 (non-final). Its last frame spans the file's final
  // kFrameBytes bytes.
  const std::size_t victim = 1;
  const std::string victim_file =
      (dir_ / whole.manifest.segments[victim].file).string();
  const std::uint64_t full = fs::file_size(victim_file);
  const std::uint64_t records_before_victim =
      whole.manifest.segments[victim].base_seq;
  const std::uint64_t victim_records = whole.segment_records[victim];
  const std::uint64_t intact_prefix =
      records_before_victim + victim_records - 1;

  const fs::path pristine = dir_ / "pristine";
  fs::create_directories(pristine);
  for (const auto& de : fs::directory_iterator(dir_))
    if (de.is_regular_file())
      fs::copy_file(de.path(), pristine / de.path().filename(),
                    fs::copy_options::overwrite_existing);

  for (std::uint64_t cut = full - kFrameBytes; cut < full; ++cut) {
    // Restore the pristine chain, then tear the victim at `cut`.
    for (const auto& de : fs::directory_iterator(pristine))
      fs::copy_file(de.path(), dir_ / de.path().filename(),
                    fs::copy_options::overwrite_existing);
    fs::resize_file(victim_file, cut);

    SegmentedWalScan scan = scan_segmented_wal(b);
    ASSERT_EQ(scan.records.size(), intact_prefix) << "cut at " << cut;
    if (cut == full - kFrameBytes) {
      // Clean frame boundary inside the victim: the victim itself is
      // whole, but the NEXT segment's base_seq now gaps past the missing
      // record, which is itself a tear.
      EXPECT_TRUE(scan.torn);
    } else {
      EXPECT_TRUE(scan.torn) << "cut at " << cut;
      EXPECT_EQ(scan.torn_segment, victim) << "cut at " << cut;
    }
    EXPECT_EQ(scan.dropped_records,
              records.size() - intact_prefix - 1)
        << "cut at " << cut;

    const std::uint64_t removed = repair_segmented_wal(b, scan);
    EXPECT_GT(removed, 0u);
    // Only the intact prefix survives; the chain is clean again.
    SegmentedWalScan repaired = scan_segmented_wal(b);
    EXPECT_FALSE(repaired.torn) << "cut at " << cut;
    ASSERT_EQ(repaired.records.size(), intact_prefix);
    for (std::size_t i = 0; i < intact_prefix; ++i)
      ASSERT_EQ(repaired.records[i], records[i]) << "cut at " << cut;

    // A writer resumed on the repaired chain re-appends the lost suffix
    // and the log converges bit-identically with the never-torn one.
    {
      SegmentedWal wal(b, tiny_segments(), /*truncate=*/false, &repaired);
      for (std::size_t i = intact_prefix; i < records.size(); ++i)
        wal.append(records[i]);
      wal.close();
    }
    expect_same_records(scan_segmented_wal(b).records, records,
                        "healed at cut " + std::to_string(cut));
  }
}

TEST_F(WalSegmentTest, CompactionDeletesOnlyCoveredSealedSegments) {
  const std::string b = base("cmp.wal");
  const std::vector<WalRecord> records = sample_records(19, 8);
  SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
  for (const WalRecord& rec : records) wal.append(rec);
  ASSERT_GE(wal.manifest().segments.size(), 4u);

  const std::uint64_t second_base = wal.manifest().segments[1].base_seq;
  const std::string first_file =
      (dir_ / wal.manifest().segments[0].file).string();

  // A checkpoint short of the second segment's base covers nothing
  // deletable.
  EXPECT_EQ(wal.compact(second_base - 1), 0u);
  EXPECT_TRUE(fs::exists(first_file));

  // Covering exactly through segment 0's records kills exactly segment 0.
  EXPECT_EQ(wal.compact(second_base), 1u);
  EXPECT_FALSE(fs::exists(first_file));
  EXPECT_EQ(wal.manifest().segments.front().base_seq, second_base);

  // Compaction can never delete the ACTIVE segment, no matter how far the
  // checkpoint reaches.
  const std::size_t before = wal.manifest().segments.size();
  EXPECT_EQ(wal.compact(records.size() + 1000), before - 1);
  ASSERT_EQ(wal.manifest().segments.size(), 1u);
  wal.close();

  // The surviving tail still scans, with first_seq telling what is gone.
  const SegmentedWalScan scan = scan_segmented_wal(b);
  EXPECT_FALSE(scan.torn);
  EXPECT_GT(scan.first_seq, 0u);
  ASSERT_FALSE(scan.records.empty());
  EXPECT_EQ(scan.records.front().seq, scan.first_seq);
  EXPECT_EQ(scan.records.back(), records.back());
}

TEST_F(WalSegmentTest, LegacyBareFileIsAdoptedAndRotatesOut) {
  const std::string b = base("leg.wal");
  const std::vector<WalRecord> records = sample_records(11, 9);
  {
    // A pre-segmentation log: bare "CDBPWAL1" file at the base path.
    WalWriter w(b, FsyncPolicy::kNone, 1, /*truncate=*/true);
    for (std::size_t i = 0; i < 5; ++i) w.append(records[i]);
    w.close();
  }
  ASSERT_FALSE(read_wal_manifest(b).has_value());

  const SegmentedWalScan scan = scan_segmented_wal(b);
  EXPECT_TRUE(scan.legacy);
  EXPECT_EQ(scan.records.size(), 5u);

  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/false);
    for (std::size_t i = 5; i < records.size(); ++i) wal.append(records[i]);
    EXPECT_GT(wal.rotations(), 0u);  // appends rotated out of the bare file
    wal.close();
  }
  const auto manifest = read_wal_manifest(b);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->segments.front().file, "leg.wal");
  expect_same_records(scan_segmented_wal(b).records, records, "adopted");
}

TEST_F(WalSegmentTest, FreshTruncateClearsEveryTraceOfTheOldChain) {
  const std::string b = base("fresh.wal");
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    for (const WalRecord& rec : sample_records(19, 10)) wal.append(rec);
    wal.close();
  }
  ASSERT_GE(scan_segmented_wal(b).manifest.segments.size(), 4u);
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    wal.append(sample_records(1, 11)[0]);
    wal.close();
  }
  const SegmentedWalScan scan = scan_segmented_wal(b);
  EXPECT_EQ(scan.manifest.segments.size(), 1u);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.first_seq, 0u);
  // No stray .seg files from the old chain.
  std::size_t seg_files = 0;
  for (const auto& de : fs::directory_iterator(dir_))
    if (de.path().extension() == ".seg") ++seg_files;
  EXPECT_EQ(seg_files, 1u);
}

TEST_F(WalSegmentTest, ParallelScanMatchesSequential) {
  const std::string b = base("par.wal");
  const std::vector<WalRecord> records = sample_records(19, 12);
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    for (const WalRecord& rec : records) wal.append(rec);
    wal.close();
  }
  parallel::ThreadPool pool(4);
  const SegmentedWalScan seq = scan_segmented_wal(b);
  const SegmentedWalScan par = scan_segmented_wal(b, &pool);
  EXPECT_EQ(par.segments_scanned, seq.segments_scanned);
  EXPECT_EQ(par.first_seq, seq.first_seq);
  EXPECT_EQ(par.torn, seq.torn);
  expect_same_records(par.records, seq.records, "parallel vs sequential");
}

TEST_F(WalSegmentTest, MissingSegmentFileEndsThePrefix) {
  const std::string b = base("miss.wal");
  const std::vector<WalRecord> records = sample_records(19, 13);
  {
    SegmentedWal wal(b, tiny_segments(), /*truncate=*/true);
    for (const WalRecord& rec : records) wal.append(rec);
    wal.close();
  }
  SegmentedWalScan whole = scan_segmented_wal(b);
  ASSERT_GE(whole.manifest.segments.size(), 3u);
  const std::uint64_t keep = whole.manifest.segments[1].base_seq;
  fs::remove(dir_ / whole.manifest.segments[1].file);

  SegmentedWalScan scan = scan_segmented_wal(b);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records.size(), keep);
  repair_segmented_wal(b, scan);
  const SegmentedWalScan repaired = scan_segmented_wal(b);
  EXPECT_FALSE(repaired.torn);
  EXPECT_EQ(repaired.records.size(), keep);
  EXPECT_EQ(repaired.manifest.segments.size(), 1u);
}

}  // namespace
}  // namespace cdbp::serve
