#include "serve/wal.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"

namespace cdbp::serve {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdbp_wal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<WalRecord> sample_records(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<WalRecord> out;
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    WalRecord rec;
    rec.seq = i;
    rec.stream_index = i + 1;
    t += unit(rng);
    rec.arrival = t;
    rec.departure = t + 1.0 + unit(rng) * 7.0;
    rec.size = 0.01 + 0.5 * unit(rng);
    rec.bin = static_cast<BinId>(rng() % 5);
    out.push_back(rec);
  }
  return out;
}

void write_records(const std::string& file,
                   const std::vector<WalRecord>& records,
                   FsyncPolicy policy = FsyncPolicy::kNone) {
  WalWriter w(file, policy, 4, /*truncate=*/true);
  for (const WalRecord& rec : records) w.append(rec);
  w.close();
}

TEST_F(WalTest, RoundTripsRecordsBitExactly) {
  const std::string file = path("a.wal");
  const std::vector<WalRecord> records = sample_records(25, 7);
  write_records(file, records, FsyncPolicy::kBatch);

  const WalReadResult r = read_wal(file);
  EXPECT_TRUE(r.exists);
  EXPECT_FALSE(r.torn);
  ASSERT_EQ(r.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(r.records[i], records[i]) << "record " << i;
  EXPECT_EQ(r.valid_bytes, fs::file_size(file));
}

TEST_F(WalTest, MissingFileIsEmptyNotTorn) {
  const WalReadResult r = read_wal(path("nope.wal"));
  EXPECT_FALSE(r.exists);
  EXPECT_FALSE(r.torn);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(WalTest, CorruptHeaderIsTornAtZero) {
  const std::string file = path("bad.wal");
  std::ofstream(file, std::ios::binary) << "NOTAWAL!garbage";
  const WalReadResult r = read_wal(file);
  EXPECT_TRUE(r.exists);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_TRUE(r.records.empty());
}

// The satellite's torn-write property: truncate the file at EVERY byte
// offset inside the last frame; the reader must always return exactly the
// intact prefix and flag the tail, and never crash or return garbage.
TEST_F(WalTest, TornWriteAtEveryByteOffsetOfLastFrame) {
  const std::string file = path("full.wal");
  const std::vector<WalRecord> records = sample_records(6, 42);
  write_records(file, records);
  const std::uint64_t full = fs::file_size(file);

  // Locate the last frame's start: re-reading after truncating to one
  // record less gives its boundary.
  const WalReadResult whole = read_wal(file);
  ASSERT_FALSE(whole.torn);
  ASSERT_EQ(whole.records.size(), records.size());
  const std::uint64_t frame_bytes = (full - 8) / records.size();
  const std::uint64_t last_start = full - frame_bytes;

  for (std::uint64_t cut = last_start; cut < full; ++cut) {
    const std::string torn_file = path("torn.wal");
    fs::copy_file(file, torn_file, fs::copy_options::overwrite_existing);
    truncate_wal(torn_file, cut);

    const WalReadResult r = read_wal(torn_file);
    EXPECT_TRUE(r.exists);
    ASSERT_EQ(r.records.size(), records.size() - 1) << "cut at " << cut;
    EXPECT_EQ(r.valid_bytes, last_start) << "cut at " << cut;
    if (cut == last_start) {
      // Clean frame boundary: nothing dangles.
      EXPECT_FALSE(r.torn);
    } else {
      EXPECT_TRUE(r.torn) << "cut at " << cut;
      EXPECT_FALSE(r.tail_error.empty());
    }
    for (std::size_t i = 0; i + 1 < records.size(); ++i)
      EXPECT_EQ(r.records[i], records[i]);

    // Repair + append continues the log where the intact prefix ended.
    truncate_wal(torn_file, r.valid_bytes);
    WalWriter w(torn_file, FsyncPolicy::kNone, 1, /*truncate=*/false);
    w.append(records.back());
    w.close();
    const WalReadResult healed = read_wal(torn_file);
    EXPECT_FALSE(healed.torn);
    ASSERT_EQ(healed.records.size(), records.size());
    EXPECT_EQ(healed.records.back(), records.back());
  }
}

TEST_F(WalTest, PayloadCorruptionStopsAtBadFrame) {
  const std::string file = path("crc.wal");
  const std::vector<WalRecord> records = sample_records(5, 9);
  write_records(file, records);

  // Flip one byte inside record 2's payload (frames are fixed-size).
  const std::uint64_t frame_bytes = (fs::file_size(file) - 8) / 5;
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(8 + 2 * frame_bytes + 8 + 3));
  f.put('\xFF');
  f.close();

  const WalReadResult r = read_wal(file);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_NE(r.tail_error.find("CRC"), std::string::npos);
}

TEST_F(WalTest, AppendModePreservesExistingRecords) {
  const std::string file = path("app.wal");
  const std::vector<WalRecord> records = sample_records(8, 3);
  {
    WalWriter w(file, FsyncPolicy::kEvery, 1, /*truncate=*/true);
    for (std::size_t i = 0; i < 4; ++i) w.append(records[i]);
    w.close();
  }
  {
    WalWriter w(file, FsyncPolicy::kBatch, 2, /*truncate=*/false);
    for (std::size_t i = 4; i < 8; ++i) w.append(records[i]);
    w.close();
  }
  const WalReadResult r = read_wal(file);
  ASSERT_EQ(r.records.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(r.records[i], records[i]);
}

TEST_F(WalTest, TruncateModeStartsFresh) {
  const std::string file = path("fresh.wal");
  write_records(file, sample_records(6, 1));
  write_records(file, sample_records(2, 2));
  EXPECT_EQ(read_wal(file).records.size(), 2u);
}

TEST_F(WalTest, FsyncPolicyParsing) {
  EXPECT_EQ(parse_fsync_policy("none"), FsyncPolicy::kNone);
  EXPECT_EQ(parse_fsync_policy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(parse_fsync_policy("every"), FsyncPolicy::kEvery);
  EXPECT_THROW((void)parse_fsync_policy("often"), std::invalid_argument);
  EXPECT_EQ(to_string(FsyncPolicy::kBatch), "batch");
  EXPECT_THROW(WalWriter(path("z.wal"), FsyncPolicy::kBatch, 0, true),
               std::invalid_argument);
}

// Frame-format v2 envelope rule: an intact frame whose type byte is
// unknown must be SKIPPED, not treated as corruption — records appended by
// a newer writer replay through an older reader. Pre-fix, the reader
// hard-failed on any frame whose length differed from the offer payload.
TEST_F(WalTest, UnknownRecordTypeIsSkippedNotFatal) {
  const std::string file = path("future.wal");
  const std::vector<WalRecord> records = sample_records(5, 21);
  {
    WalWriter w(file, FsyncPolicy::kNone, 1, /*truncate=*/true);
    for (std::size_t i = 0; i < 3; ++i) w.append(records[i]);
    w.close();
  }
  {
    // Hand-craft an envelope-valid frame of unknown type 9.
    StateWriter payload;
    payload.u8(9);
    for (const char c : std::string("future-record-kind"))
      payload.u8(static_cast<std::uint8_t>(c));
    StateWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload.buffer().data(), payload.size()));
    std::ofstream f(file, std::ios::binary | std::ios::app);
    f.write(frame.buffer().data(),
            static_cast<std::streamsize>(frame.size()));
    f.write(payload.buffer().data(),
            static_cast<std::streamsize>(payload.size()));
  }
  {
    WalWriter w(file, FsyncPolicy::kNone, 1, /*truncate=*/false);
    for (std::size_t i = 3; i < 5; ++i) w.append(records[i]);
    w.close();
  }
  const WalReadResult r = read_wal(file);
  EXPECT_FALSE(r.torn) << r.tail_error;
  EXPECT_EQ(r.unknown_records, 1u);
  ASSERT_EQ(r.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r.records[i], records[i]);
  EXPECT_EQ(r.valid_bytes, fs::file_size(file));
}

// Type-2 tenant-offer frames: records carrying a tenant round-trip with
// the tenant intact, and tenant-less records keep emitting the fixed-size
// type-1 frame — a log written without tenants stays byte-identical to
// the v1 format.
TEST_F(WalTest, TenantRecordsRoundTripAndTenantlessStayType1) {
  const std::string file = path("tenant.wal");
  std::vector<WalRecord> records = sample_records(6, 11);
  records[1].tenant = "alice";
  records[3].tenant = "bob-2.example";
  records[4].tenant = "alice";
  write_records(file, records, FsyncPolicy::kBatch);

  const WalReadResult r = read_wal(file);
  EXPECT_FALSE(r.torn) << r.tail_error;
  ASSERT_EQ(r.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(r.records[i], records[i]) << "record " << i;

  // A fully tenant-less log is pure type-1: 8-byte file header plus
  // fixed 57-byte frames (8 header + 49 payload), exactly the v1 layout.
  const std::string v1 = path("tenantless.wal");
  write_records(v1, sample_records(4, 12));
  EXPECT_EQ(fs::file_size(v1), 8u + 4u * (8u + 49u));
}

// A CRC-valid type-2 frame whose tenant_len disagrees with the payload's
// remaining bytes is corruption, not a short tenant: the reader must stop
// at the intact prefix and flag the tail.
TEST_F(WalTest, TenantFrameWithBadLengthIsTorn) {
  const std::string file = path("badlen.wal");
  const std::vector<WalRecord> records = sample_records(2, 13);
  write_records(file, records);

  const auto append_type2 = [&](std::uint64_t tenant_len,
                                const std::string& tenant_bytes) {
    StateWriter payload;
    payload.u8(2);
    for (int i = 0; i < 6; ++i) payload.u64(0);  // fixed offer fields
    payload.u64(tenant_len);
    for (const char c : tenant_bytes)
      payload.u8(static_cast<std::uint8_t>(c));
    StateWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload.buffer().data(), payload.size()));
    std::ofstream f(file, std::ios::binary | std::ios::app);
    f.write(frame.buffer().data(), static_cast<std::streamsize>(frame.size()));
    f.write(payload.buffer().data(),
            static_cast<std::streamsize>(payload.size()));
  };

  // tenant_len claims 99 bytes but only 4 follow.
  append_type2(99, "oops");
  {
    const WalReadResult r = read_wal(file);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.records.size(), 2u);
    EXPECT_NE(r.tail_error.find("length"), std::string::npos) << r.tail_error;
  }

  // Heal, then append a zero-length tenant — type 2 requires a tenant.
  truncate_wal(file, read_wal(file).valid_bytes);
  append_type2(0, "");
  {
    const WalReadResult r = read_wal(file);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.records.size(), 2u);
  }
}

TEST_F(WalTest, SegmentHeaderRoundTripsBaseSeq) {
  const std::string file = path("seg.wal");
  std::vector<WalRecord> records = sample_records(4, 33);
  for (std::size_t i = 0; i < records.size(); ++i) records[i].seq = 42 + i;
  {
    WalWriter w(file, FsyncPolicy::kBatch, 2, /*truncate=*/true,
                WalFormat::kSegment, 42);
    for (const WalRecord& rec : records) w.append(rec);
    w.close();
  }
  const WalReadResult r = read_wal(file);
  EXPECT_TRUE(r.exists);
  EXPECT_FALSE(r.torn) << r.tail_error;
  EXPECT_EQ(r.base_seq, 42u);
  ASSERT_EQ(r.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(r.records[i], records[i]);
}

TEST_F(WalTest, CorruptSegmentHeaderIsTornAtZero) {
  const std::string file = path("seghdr.wal");
  {
    WalWriter w(file, FsyncPolicy::kNone, 1, /*truncate=*/true,
                WalFormat::kSegment, 7);
    w.append(sample_records(1, 2)[0]);
    w.close();
  }
  // Flip a byte inside the header's base_seq: the header CRC must reject
  // the whole file rather than trust a wrong base sequence.
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(9);
  f.put('\x55');
  f.close();
  const WalReadResult r = read_wal(file);
  EXPECT_TRUE(r.torn);
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_NE(r.tail_error.find("header"), std::string::npos);
}

TEST_F(WalTest, AppendAfterCloseThrows) {
  const std::string file = path("closed.wal");
  WalWriter w(file, FsyncPolicy::kNone, 1, /*truncate=*/true);
  w.append(sample_records(1, 5)[0]);
  w.close();
  w.close();  // idempotent
  EXPECT_THROW(w.append(sample_records(1, 6)[0]), std::logic_error);
}

}  // namespace
}  // namespace cdbp::serve
