// Shared helpers for the libcdbp test suites.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algos/any_fit.h"
#include "algos/cdff.h"
#include "algos/classify.h"
#include "algos/hybrid.h"
#include "core/algorithm.h"
#include "core/instance.h"

namespace cdbp::testutil {

/// Builds an instance from (arrival, departure, size) triples.
inline Instance make_instance(
    std::initializer_list<std::tuple<Time, Time, Load>> items) {
  Instance out;
  for (const auto& [a, d, s] : items) out.add(a, d, s);
  out.finalize();
  return out;
}

/// A named algorithm factory, used by parameterized suites.
struct NamedFactory {
  std::string name;
  std::function<AlgorithmPtr()> make;
};

/// Every online algorithm in the library (CDFF only handles aligned inputs,
/// so suites that feed general inputs should use online_factories()).
inline std::vector<NamedFactory> online_factories() {
  return {
      {"FirstFit", [] { return std::make_unique<algos::FirstFit>(); }},
      {"BestFit", [] { return std::make_unique<algos::BestFit>(); }},
      {"NextFit", [] { return std::make_unique<algos::NextFit>(); }},
      {"WorstFit", [] { return std::make_unique<algos::WorstFit>(); }},
      {"CBD2",
       [] { return std::make_unique<algos::ClassifyByDuration>(2.0); }},
      {"HA", [] { return std::make_unique<algos::Hybrid>(); }},
  };
}

/// Algorithms valid on aligned inputs (everything, plus CDFF).
inline std::vector<NamedFactory> aligned_factories() {
  auto out = online_factories();
  out.push_back({"CDFF", [] { return std::make_unique<algos::Cdff>(); }});
  return out;
}

}  // namespace cdbp::testutil
