#include "trace/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"
#include "test_util.h"

namespace cdbp::trace {
namespace {

TEST(Trace, InstanceRoundTripsExactly) {
  const Instance in = testutil::make_instance({
      {0.0, 8.0, 0.25},
      {1.5, 3.25, 1.0 / 3.0},  // non-dyadic size survives (17 sig digits)
      {2.0, 66.0, 0.875},
  });
  std::stringstream buf;
  write_instance_csv(in, buf);
  const Instance back = read_instance_csv(buf);
  ASSERT_EQ(back.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    EXPECT_DOUBLE_EQ(back[k].arrival, in[k].arrival);
    EXPECT_DOUBLE_EQ(back[k].departure, in[k].departure);
    EXPECT_DOUBLE_EQ(back[k].size, in[k].size);
  }
}

TEST(Trace, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdbp_trace_test.csv")
          .string();
  const Instance in = testutil::make_instance({{0.0, 4.0, 0.5}});
  write_instance_csv(in, path);
  const Instance back = read_instance_csv(path);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0].departure, 4.0);
  std::remove(path.c_str());
}

TEST(Trace, RejectsMissingHeader) {
  std::stringstream buf("1,2,0.5\n");
  EXPECT_THROW((void)read_instance_csv(buf), std::runtime_error);
}

TEST(Trace, RejectsMalformedLine) {
  std::stringstream buf("arrival,departure,size\n1,2\n");
  EXPECT_THROW((void)read_instance_csv(buf), std::runtime_error);
}

TEST(Trace, RejectsBadNumbers) {
  std::stringstream buf("arrival,departure,size\nx,2,0.5\n");
  EXPECT_THROW((void)read_instance_csv(buf), std::runtime_error);
}

TEST(Trace, RejectsTrailingGarbageAfterNumbers) {
  // std::stod would happily parse "1.5abc" as 1.5; the reader must not.
  for (const char* row : {"1.5abc,2,0.5", "1,2e1x,0.5", "1,2,0.5junk",
                          "1,2,0.5 0.25", "nan(x)y,2,0.5"}) {
    std::stringstream buf(std::string("arrival,departure,size\n") + row +
                          "\n");
    EXPECT_THROW((void)read_instance_csv(buf), std::runtime_error) << row;
  }
}

TEST(Trace, AllowsSurroundingBlanksInFields) {
  std::stringstream buf("arrival,departure,size\n 0 ,\t1 , 0.5\n");
  const Instance in = read_instance_csv(buf);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_DOUBLE_EQ(in[0].departure, 1.0);
}

TEST(Trace, RejectsExtraFields) {
  std::stringstream buf("arrival,departure,size\n1,2,0.5,0.25\n");
  EXPECT_THROW((void)read_instance_csv(buf), std::runtime_error);
}

TEST(Trace, CrlfInputRoundTrips) {
  std::stringstream buf(
      "arrival,departure,size\r\n0,1,0.5\r\n2,3,0.25\r\n");
  const Instance in = read_instance_csv(buf);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_DOUBLE_EQ(in[0].size, 0.5);
  EXPECT_DOUBLE_EQ(in[1].arrival, 2.0);
}

TEST(Trace, RejectsEmptyFile) {
  std::stringstream buf("");
  EXPECT_THROW((void)read_instance_csv(buf), std::runtime_error);
}

TEST(Trace, SkipsBlankLines) {
  std::stringstream buf("arrival,departure,size\n0,1,0.5\n\n2,3,0.25\n");
  const Instance in = read_instance_csv(buf);
  EXPECT_EQ(in.size(), 2u);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW((void)read_instance_csv(std::string("/no/such/file.csv")),
               std::runtime_error);
}

TEST(Trace, TimelineCsv) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdbp_timeline_test.csv")
          .string();
  const Instance in =
      testutil::make_instance({{0.0, 2.0, 0.9}, {1.0, 3.0, 0.9}});
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);
  write_timeline_csv(r, path);
  std::ifstream check(path);
  std::string header;
  std::getline(check, header);
  EXPECT_EQ(header, "time,open_bins");
  int lines = 0;
  std::string line;
  while (std::getline(check, line)) ++lines;
  EXPECT_GE(lines, 2);
  std::remove(path.c_str());
}

TEST(Trace, TimelineOstreamOverloadMatchesFileOverload) {
  const Instance in =
      testutil::make_instance({{0.0, 2.0, 0.9}, {1.0, 3.0, 0.9}});
  algos::FirstFit ff;
  const RunResult r = Simulator{}.run(in, ff);

  std::ostringstream buf;
  write_timeline_csv(r, buf);

  const std::string path =
      (std::filesystem::temp_directory_path() / "cdbp_timeline_ostream.csv")
          .string();
  write_timeline_csv(r, path);
  std::ifstream file(path, std::ios::binary);
  std::ostringstream file_body;
  file_body << file.rdbuf();
  EXPECT_EQ(buf.str(), file_body.str());
  std::remove(path.c_str());

  // Round-trip: parse the CSV back and compare against the step function.
  std::istringstream parse(buf.str());
  std::string line;
  ASSERT_TRUE(std::getline(parse, line));
  EXPECT_EQ(line, "time,open_bins");
  const auto& samples = r.open_bins.samples();
  std::size_t k = 0;
  while (std::getline(parse, line)) {
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    ASSERT_LT(k, samples.size());
    EXPECT_DOUBLE_EQ(std::stod(line.substr(0, comma)), samples[k].time);
    EXPECT_DOUBLE_EQ(std::stod(line.substr(comma + 1)), samples[k].value);
    ++k;
  }
  EXPECT_EQ(k, samples.size());
}

}  // namespace
}  // namespace cdbp::trace
