#include "workloads/batch.h"

#include <random>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/validation.h"
#include "test_util.h"

namespace cdbp {
namespace {

using workloads::BatchConfig;
using workloads::ZipfSampler;
using workloads::make_batch_queue;

TEST(Zipf, RankOneIsModalForPositiveExponent) {
  std::mt19937_64 rng(1);
  const ZipfSampler zipf(16, 1.2);
  std::vector<int> counts(17, 0);
  for (int k = 0; k < 20000; ++k) counts[static_cast<std::size_t>(zipf(rng))] += 1;
  for (int r = 2; r <= 16; ++r) EXPECT_GT(counts[1], counts[static_cast<std::size_t>(r)]) << r;
}

TEST(Zipf, ExponentZeroIsUniform) {
  std::mt19937_64 rng(2);
  const ZipfSampler zipf(8, 0.0);
  std::vector<int> counts(9, 0);
  const int draws = 40000;
  for (int k = 0; k < draws; ++k) counts[static_cast<std::size_t>(zipf(rng))] += 1;
  for (int r = 1; r <= 8; ++r)
    EXPECT_NEAR(counts[static_cast<std::size_t>(r)], draws / 8, draws / 40) << r;
}

TEST(Zipf, FrequenciesMatchTheLaw) {
  std::mt19937_64 rng(3);
  const double s = 1.0;
  const ZipfSampler zipf(4, s);
  std::vector<int> counts(5, 0);
  const int draws = 60000;
  for (int k = 0; k < draws; ++k) counts[static_cast<std::size_t>(zipf(rng))] += 1;
  // P(r) proportional to 1/r: ratios ~ 2, 3, 4.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[4], 4.0, 0.5);
}

TEST(Zipf, Validation) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(4, -1.0), std::invalid_argument);
}

TEST(BatchQueue, ShapeAndValidity) {
  std::mt19937_64 rng(5);
  BatchConfig cfg;
  const Instance in = make_batch_queue(cfg, rng);
  in.validate();
  EXPECT_EQ(in.size(),
            static_cast<std::size_t>(cfg.waves * cfg.jobs_per_wave));
  EXPECT_TRUE(in.has_integer_times());
  for (const Item& r : in.items()) {
    EXPECT_GE(r.length(), 1.0);
    EXPECT_LE(r.length(), pow2(cfg.max_duration_class));
    EXPECT_TRUE(is_power_of_two(static_cast<std::uint64_t>(r.length())));
    EXPECT_LE(r.size, cfg.max_size + kLoadEps);
  }
}

TEST(BatchQueue, CorrelationLinksSizeAndDuration) {
  std::mt19937_64 rng(7);
  BatchConfig cfg;
  cfg.duration_size_corr = 1.0;
  cfg.waves = 50;
  const Instance in = make_batch_queue(cfg, rng);
  // With full correlation, the biggest jobs (rank 1 -> size = max_size)
  // always get the longest class.
  for (const Item& r : in.items()) {
    if (approx_equal(r.size, cfg.max_size)) {
      EXPECT_DOUBLE_EQ(r.length(), pow2(cfg.max_duration_class));
    }
  }
}

TEST(BatchQueue, RunsThroughAllAlgorithms) {
  std::mt19937_64 rng(9);
  BatchConfig cfg;
  cfg.waves = 6;
  const Instance in = make_batch_queue(cfg, rng);
  for (const auto& f : testutil::online_factories()) {
    auto algo = f.make();
    const RunResult r = Simulator{}.run(in, *algo);
    EXPECT_TRUE(validate_run(in, r).ok()) << f.name;
  }
}

TEST(BatchQueue, Validation) {
  std::mt19937_64 rng(1);
  BatchConfig bad;
  bad.waves = 0;
  EXPECT_THROW((void)make_batch_queue(bad, rng), std::invalid_argument);
  BatchConfig bad2;
  bad2.max_size = 1.5;
  EXPECT_THROW((void)make_batch_queue(bad2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp
