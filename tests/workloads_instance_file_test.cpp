#include "workloads/instance_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "core/simulator.h"
#include "test_util.h"
#include "workloads/general_random.h"

namespace cdbp::workloads {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(InstanceFile, RoundTripsExactly) {
  TempFile f("cdbp_if_roundtrip.cdbpi");
  const Instance in = testutil::make_instance({
      {0.0, 8.0, 0.25},
      {1.5, 3.25, 1.0 / 3.0},  // non-dyadic size survives (binary format)
      {1.5, 66.0, 0.875},      // ties in arrival are legal
      {2.0, 2.5, 1.0},         // full-bin item
  });
  write_instance_file(f.path, in);
  const Instance back = read_instance_file(f.path);
  ASSERT_EQ(back.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    EXPECT_EQ(back[k].id, in[k].id);
    EXPECT_EQ(back[k].arrival, in[k].arrival);  // bitwise
    EXPECT_EQ(back[k].departure, in[k].departure);
    EXPECT_EQ(back[k].size, in[k].size);
  }
}

TEST(InstanceFile, EmptyInstanceRoundTrips) {
  TempFile f("cdbp_if_empty.cdbpi");
  write_instance_file(f.path, Instance{});
  const Instance back = read_instance_file(f.path);
  EXPECT_EQ(back.size(), 0u);
  InstanceFileReader reader(f.path);
  Item item;
  EXPECT_EQ(reader.size_hint(), 0u);
  EXPECT_FALSE(reader.next(item));
}

TEST(InstanceFile, ChunkBoundarySizesRoundTrip) {
  // Exercise the chunking edge cases with a tiny chunk size: exactly one
  // chunk, one item short, one item over, and several full chunks.
  constexpr std::size_t kChunk = 8;
  for (const std::size_t n : {std::size_t{7}, std::size_t{8}, std::size_t{9},
                              std::size_t{32}, std::size_t{33}}) {
    TempFile f("cdbp_if_chunks.cdbpi");
    {
      InstanceFileWriter writer(f.path, kChunk);
      for (std::size_t k = 0; k < n; ++k)
        writer.add(static_cast<Time>(k), static_cast<Time>(k) + 1.5, 0.5);
      writer.close();
      EXPECT_EQ(writer.items_written(), n);
    }
    InstanceFileReader reader(f.path);
    EXPECT_EQ(reader.size_hint(), n);
    Item item;
    std::size_t got = 0;
    while (reader.next(item)) {
      EXPECT_EQ(item.id, static_cast<ItemId>(got));
      EXPECT_EQ(item.arrival, static_cast<Time>(got));
      ++got;
    }
    EXPECT_EQ(got, n);
    EXPECT_FALSE(reader.next(item));  // stays exhausted
  }
}

TEST(InstanceFile, StreamedRunMatchesInRamRun) {
  TempFile f("cdbp_if_sim.cdbpi");
  std::mt19937_64 rng(5);
  GeneralConfig cfg;
  cfg.target_items = 300;
  cfg.log2_mu = 5;
  cfg.horizon = 30.0;
  const Instance in = make_general_random(cfg, rng);
  write_instance_file(f.path, in, /*chunk_items=*/64);

  const Simulator sim{SimulatorOptions{.keep_history = false,
                                       .storage = LedgerStorage::kSoa}};
  algos::AnyFit ff(algos::FitRule::kFirst);
  const RunResult in_ram = sim.run(in, ff);

  InstanceFileReader source(f.path);
  algos::AnyFit ff2(algos::FitRule::kFirst);
  const RunResult streamed = sim.run_source(source, ff2);

  EXPECT_EQ(streamed.cost, in_ram.cost);  // bitwise
  EXPECT_EQ(streamed.bins_opened, in_ram.bins_opened);
  EXPECT_EQ(streamed.max_open, in_ram.max_open);
  EXPECT_EQ(streamed.items, in.size());
}

TEST(InstanceFile, EveryTruncationPrefixIsRejected) {
  TempFile f("cdbp_if_trunc.cdbpi");
  {
    InstanceFileWriter writer(f.path, /*chunk_items=*/4);
    for (int k = 0; k < 10; ++k) writer.add(k, k + 2.0, 0.25);
    writer.close();
  }
  const std::string bytes = slurp(f.path);
  ASSERT_GT(bytes.size(), 8u);
  TempFile cut("cdbp_if_trunc_cut.cdbpi");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(cut.path, bytes.substr(0, len));
    EXPECT_THROW(
        {
          InstanceFileReader reader(cut.path);
          Item item;
          while (reader.next(item)) {
          }
        },
        std::runtime_error)
        << "truncation at byte " << len << " was accepted";
  }
}

TEST(InstanceFile, EveryByteFlipIsRejected) {
  // A single flipped bit anywhere must be caught — by the magic check, a
  // CRC mismatch, or a structural validation. No flip may silently yield a
  // different instance.
  TempFile f("cdbp_if_flip.cdbpi");
  {
    InstanceFileWriter writer(f.path, /*chunk_items=*/4);
    for (int k = 0; k < 6; ++k) writer.add(k, k + 2.0, 0.25);
    writer.close();
  }
  const std::string bytes = slurp(f.path);
  TempFile bad("cdbp_if_flip_bad.cdbpi");
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    spit(bad.path, mutated);
    EXPECT_THROW(
        {
          InstanceFileReader reader(bad.path);
          Item item;
          while (reader.next(item)) {
          }
        },
        std::runtime_error)
        << "byte flip at offset " << pos << " was accepted";
  }
}

TEST(InstanceFile, TrailingDataRejected) {
  TempFile f("cdbp_if_trailing.cdbpi");
  {
    InstanceFileWriter writer(f.path);
    writer.add(0.0, 1.0, 0.5);
    writer.close();
  }
  std::string bytes = slurp(f.path);
  bytes.push_back('\0');
  spit(f.path, bytes);
  EXPECT_THROW(
      {
        InstanceFileReader reader(f.path);
        Item item;
        while (reader.next(item)) {
        }
      },
      std::runtime_error);
}

TEST(InstanceFile, WriterRejectsMalformedItems) {
  TempFile f("cdbp_if_badwrite.cdbpi");
  InstanceFileWriter writer(f.path);
  EXPECT_THROW(writer.add(0.0, 1.0, 0.0), std::invalid_argument);   // size 0
  EXPECT_THROW(writer.add(0.0, 1.0, 1.5), std::invalid_argument);   // > cap
  EXPECT_THROW(writer.add(2.0, 2.0, 0.5), std::invalid_argument);   // dep<=arr
  writer.add(3.0, 4.0, 0.5);
  EXPECT_THROW(writer.add(2.0, 5.0, 0.5),
               std::invalid_argument);  // arrivals out of order
  writer.close();
}

TEST(InstanceFile, MissingFileAndBadMagicRejected) {
  EXPECT_THROW(InstanceFileReader("/nonexistent/no.cdbpi"),
               std::runtime_error);
  TempFile f("cdbp_if_magic.cdbpi");
  spit(f.path, "NOTCDBPI-------------------------");
  EXPECT_THROW(InstanceFileReader{f.path}, std::runtime_error);
}

}  // namespace
}  // namespace cdbp::workloads
