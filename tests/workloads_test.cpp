#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <random>

#include <gtest/gtest.h>

#include "algos/any_fit.h"
#include "algos/hybrid.h"
#include "core/simulator.h"
#include "opt/bounds.h"
#include "workloads/aligned_random.h"
#include "workloads/binary_input.h"
#include "workloads/cloud_gaming.h"
#include "workloads/ff_bad.h"
#include "workloads/general_random.h"

namespace cdbp {
namespace {

TEST(BinaryInput, DefinitionShape) {
  const Instance in = workloads::make_binary_input(3);
  EXPECT_EQ(in.size(), 15u);  // 2 mu - 1
  EXPECT_TRUE(in.is_aligned());
  // Exactly mu/2^i items of each length 2^i.
  std::map<double, int> counts;
  for (const Item& r : in.items()) counts[r.length()] += 1;
  EXPECT_EQ(counts[1.0], 8);
  EXPECT_EQ(counts[2.0], 4);
  EXPECT_EQ(counts[4.0], 2);
  EXPECT_EQ(counts[8.0], 1);
  // Loads 1/(n+1) (documented deviation).
  for (const Item& r : in.items()) EXPECT_DOUBLE_EQ(r.size, 0.25);
}

TEST(BinaryInput, ArrivalsAtMultiplesOnly) {
  const Instance in = workloads::make_binary_input(4);
  for (const Item& r : in.items()) {
    const auto period = r.length();
    EXPECT_EQ(std::fmod(r.arrival, period), 0.0);
    EXPECT_DOUBLE_EQ(r.departure - r.arrival, period);
  }
}

TEST(BinaryInput, RejectsBadN) {
  EXPECT_THROW((void)workloads::make_binary_input(0), std::invalid_argument);
  EXPECT_THROW((void)workloads::make_binary_input(31), std::invalid_argument);
}

TEST(AlignedRandom, ProducesAlignedContiguousHorizon) {
  std::mt19937_64 rng(2);
  workloads::AlignedConfig cfg;
  cfg.n = 7;
  cfg.max_bucket = 5;
  const Instance in = workloads::make_aligned_random(cfg, rng);
  EXPECT_TRUE(in.is_aligned());
  EXPECT_GE(in.size(), 1u);
  EXPECT_LE(in.horizon_end(), pow2(7) + kTimeEps);
  for (const Item& r : in.items()) {
    EXPECT_LE(aligned_bucket(r.length()), 5);
    EXPECT_GE(r.length(), 1.0);
  }
}

TEST(AlignedRandom, SeedsFullLengthItemAtZero) {
  std::mt19937_64 rng(4);
  workloads::AlignedConfig cfg;
  cfg.n = 6;
  cfg.max_bucket = 6;
  cfg.arrivals_per_slot = 0.01;  // sparse: the seed guarantee matters
  const Instance in = workloads::make_aligned_random(cfg, rng);
  bool found = false;
  for (const Item& r : in.items())
    if (r.arrival == 0.0 && aligned_bucket(r.length()) == 6) found = true;
  EXPECT_TRUE(found);
}

TEST(AlignedRandom, NonPow2LengthsStayInBucket) {
  std::mt19937_64 rng(6);
  workloads::AlignedConfig cfg;
  cfg.n = 6;
  cfg.max_bucket = 4;
  cfg.pow2_lengths = false;
  const Instance in = workloads::make_aligned_random(cfg, rng);
  EXPECT_TRUE(in.is_aligned());
}

TEST(AlignedRandom, Determinism) {
  workloads::AlignedConfig cfg;
  std::mt19937_64 a(9), b(9);
  const Instance x = workloads::make_aligned_random(cfg, a);
  const Instance y = workloads::make_aligned_random(cfg, b);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t k = 0; k < x.size(); ++k) EXPECT_EQ(x[k], y[k]);
}

TEST(GeneralRandom, AllShapesWellFormed) {
  std::mt19937_64 rng(1);
  for (auto shape :
       {workloads::GeneralShape::kLogUniform,
        workloads::GeneralShape::kExponential,
        workloads::GeneralShape::kGeometricBursts,
        workloads::GeneralShape::kTwoPhase}) {
    workloads::GeneralConfig cfg;
    cfg.shape = shape;
    cfg.target_items = 100;
    cfg.log2_mu = 6;
    const Instance in = workloads::make_general_random(cfg, rng);
    in.validate();
    EXPECT_GE(in.min_length(), 1.0 - kTimeEps) << to_string(shape);
    EXPECT_LE(in.mu(), pow2(6) + kTimeEps) << to_string(shape);
    EXPECT_GT(in.size(), 0u) << to_string(shape);
  }
}

TEST(GeneralRandom, ShapeNames) {
  EXPECT_EQ(to_string(workloads::GeneralShape::kLogUniform), "log-uniform");
  EXPECT_EQ(to_string(workloads::GeneralShape::kTwoPhase), "two-phase");
}

TEST(CloudGaming, TraceLooksLikeSessions) {
  std::mt19937_64 rng(5);
  workloads::CloudGamingConfig cfg;
  cfg.days = 0.5;
  const Instance in = workloads::make_cloud_gaming(cfg, rng);
  EXPECT_GT(in.size(), 50u);
  in.validate();
  EXPECT_TRUE(in.has_integer_times());
  for (const Item& r : in.items()) {
    EXPECT_GE(r.length(), 1.0);
    EXPECT_LE(r.size, cfg.max_share + kLoadEps);
  }
}

TEST(CloudGaming, DiurnalVariationPresent) {
  std::mt19937_64 rng(8);
  workloads::CloudGamingConfig cfg;
  cfg.days = 4.0;
  const Instance in = workloads::make_cloud_gaming(cfg, rng);
  // Arrival counts must differ substantially between the busiest and
  // quietest 6-hour window of the day.
  std::array<int, 4> buckets{};
  for (const Item& r : in.items()) {
    const double minute_of_day = std::fmod(r.arrival, 24.0 * 60.0);
    buckets[static_cast<std::size_t>(minute_of_day / (6.0 * 60.0))] += 1;
  }
  const auto [lo, hi] = std::minmax_element(buckets.begin(), buckets.end());
  EXPECT_GT(*hi, 2 * *lo);
}

TEST(FfBad, ForcesLinearInMuRatioOnFirstFit) {
  const auto result = workloads::build_nonclairvoyant_bad(
      5, 4, [] { return std::make_unique<algos::FirstFit>(); });
  EXPECT_GE(result.probe_bins, 4u);
  algos::FirstFit ff;
  const Cost cost = run_cost(result.instance, ff);
  const opt::Bounds b = opt::compute_bounds(result.instance);
  // FF pays ~ bins * mu; OPT upper ~ mu + bins.
  EXPECT_GT(cost / b.upper_ceil(), 1.0);
  // FF must pay at least probe_bins * (mu - 1): each probed bin holds a
  // survivor to time mu.
  EXPECT_GE(cost, static_cast<double>(result.probe_bins) * (pow2(5) - 1.0));
}

TEST(FfBad, RatioGrowsLinearlyWithMu) {
  // The adaptive family only bites when the bin count scales with mu
  // (B = mu survivors of size 1/mu pack into one OPT bin): the certified
  // ratio is then ~ mu/4.
  auto measured = [](int n) {
    const auto result = workloads::build_nonclairvoyant_bad(
        n, static_cast<int>(pow2(n)),
        [] { return std::make_unique<algos::FirstFit>(); });
    algos::FirstFit ff;
    const Cost cost = run_cost(result.instance, ff);
    return cost / opt::compute_bounds(result.instance).upper_ceil();
  };
  const double r4 = measured(4);
  const double r6 = measured(6);
  EXPECT_GT(r6, 3.0 * r4);  // 4x mu growth expected; allow slack
}

TEST(FfBad, RejectsClairvoyantAlgorithms) {
  // HA reads departures, so its probe placements differ between the two
  // provisional departure values -> the construction must refuse.
  EXPECT_THROW(workloads::build_nonclairvoyant_bad(
                   4, 2, [] { return std::make_unique<algos::Hybrid>(); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdbp
