// The cdbp command-line tool. All logic lives in src/cli (unit-tested);
// this file only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return cdbp::cli::run_cli(args, std::cout, std::cerr);
}
